/**
 * @file
 * Streaming-substrate contract: multi-frame recordings replay
 * bit-identically to the live stream through whole-trace cursors and
 * through every ChunkRange slicing, cursors are reusable across
 * disjoint and out-of-order ranges, and a multi-frame recording
 * round-trips through the on-disk store.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "support/random.hpp"
#include "trace/memory_trace.hpp"
#include "trace/sink.hpp"
#include "trace/trace_store.hpp"

namespace fs = std::filesystem;

namespace {

using lpp::trace::Addr;
using lpp::trace::MemoryTrace;
using lpp::trace::TraceCursor;

/** Records every delivery verbatim, including batch boundaries. */
class DeliveryLog : public lpp::trace::TraceSink
{
  public:
    void
    onBlock(lpp::trace::BlockId b, uint32_t instrs) override
    {
        log.push_back("B" + std::to_string(b) + ":" +
                      std::to_string(instrs));
    }

    void
    onAccess(Addr a) override
    {
        log.push_back("a" + std::to_string(a));
    }

    void
    onAccessBatch(const Addr *addrs, size_t n) override
    {
        std::string s = "batch" + std::to_string(n) + ":";
        for (size_t i = 0; i < n; ++i)
            s += std::to_string(addrs[i]) + ",";
        log.push_back(s);
    }

    void
    onManualMarker(uint32_t id) override
    {
        log.push_back("M" + std::to_string(id));
    }

    void
    onPhaseMarker(lpp::trace::PhaseId p) override
    {
        log.push_back("P" + std::to_string(p));
    }

    void onEnd() override { log.push_back("E"); }

    std::vector<std::string> log;
};

/** A mixed stream with strided batches, markers, and some noise. */
void
emitStream(lpp::trace::TraceSink &sink, int rounds, uint64_t seed)
{
    lpp::Rng rng(seed);
    std::vector<Addr> batch;
    for (int round = 0; round < rounds; ++round) {
        sink.onBlock(static_cast<uint32_t>(round % 17), 10 + round % 5);
        batch.clear();
        size_t n = 1 + rng.below(60);
        Addr base = 0x10000 + 8 * rng.below(1 << 16);
        for (size_t i = 0; i < n; ++i)
            batch.push_back(base + 8 * static_cast<Addr>(i));
        sink.onAccessBatch(batch.data(), batch.size());
        sink.onAccess(8 * rng.below(1 << 20));
        if (round % 13 == 0)
            sink.onManualMarker(static_cast<uint32_t>(round));
        if (round % 29 == 0)
            sink.onPhaseMarker(static_cast<uint32_t>(round / 29));
    }
    sink.onEnd();
}

/** Record `rounds` of emitStream with a small frame target. */
MemoryTrace
recordMultiFrame(int rounds, uint64_t frame_target, uint64_t seed,
                 DeliveryLog *direct = nullptr)
{
    MemoryTrace trace;
    trace.setFrameTargetAccesses(frame_target);
    if (direct) {
        lpp::trace::FanoutSink both;
        both.attach(&trace);
        both.attach(direct);
        emitStream(both, rounds, seed);
    } else {
        emitStream(trace, rounds, seed);
    }
    return trace;
}

TEST(StreamingTrace, MultiFrameReplayIsBitIdenticalToLiveStream)
{
    DeliveryLog direct;
    MemoryTrace trace = recordMultiFrame(400, 512, 1, &direct);
    ASSERT_GT(trace.frameCount(), 4u) << "frame target did not split";

    DeliveryLog replayed;
    trace.replay(replayed);
    EXPECT_EQ(replayed.log, direct.log);
}

TEST(StreamingTrace, EndSealsTheTrailingFrame)
{
    MemoryTrace trace = recordMultiFrame(50, 1u << 20, 2);
    // Everything fits one frame, and End closes it: all frames are
    // sealed (and LZ-packed), none left open.
    EXPECT_EQ(trace.sealedFrameCount(), trace.frameCount());
}

TEST(StreamingTrace, RangeReplayMatchesWholeReplayAtEveryChunkTarget)
{
    constexpr uint64_t frameTarget = 512;
    DeliveryLog direct;
    MemoryTrace trace = recordMultiFrame(300, frameTarget, 3, &direct);

    // Chunk targets straddling the frame geometry: single-access
    // chunks, one less / exactly / one more than a frame, and larger
    // than the whole recording.
    const uint64_t targets[] = {1, frameTarget - 1, frameTarget,
                                frameTarget + 1,
                                trace.accessCount() + 100};
    for (uint64_t target : targets) {
        auto ranges = trace.chunks(target);
        ASSERT_FALSE(ranges.empty());
        DeliveryLog sliced;
        TraceCursor cursor(trace);
        size_t events = 0;
        uint64_t accesses = 0;
        for (const auto &r : ranges) {
            EXPECT_EQ(r.firstEvent, events);
            EXPECT_EQ(r.firstAccess, accesses);
            cursor.replayRange(sliced, r);
            events += r.eventCount;
            accesses += r.accessCount;
        }
        EXPECT_EQ(events, trace.eventCount()) << "target " << target;
        EXPECT_EQ(accesses, trace.accessCount()) << "target " << target;
        EXPECT_EQ(sliced.log, direct.log) << "target " << target;
    }
}

TEST(StreamingTrace, CursorReplaysRangesOutOfOrderAndRepeatedly)
{
    DeliveryLog direct;
    MemoryTrace trace = recordMultiFrame(200, 256, 4, &direct);
    auto ranges = trace.chunks(700);
    ASSERT_GE(ranges.size(), 3u);

    // One cursor, ranges visited back-to-front, then the first range
    // again: every slice must still match the corresponding span of
    // the live log.
    TraceCursor cursor(trace);
    std::vector<std::vector<std::string>> expected;
    size_t at = 0;
    for (const auto &r : ranges) {
        expected.emplace_back(direct.log.begin() +
                                  static_cast<long>(at),
                              direct.log.begin() +
                                  static_cast<long>(at + r.eventCount));
        at += r.eventCount;
    }
    for (size_t i = ranges.size(); i-- > 0;) {
        DeliveryLog got;
        cursor.replayRange(got, ranges[i]);
        EXPECT_EQ(got.log, expected[i]) << "range " << i;
    }
    DeliveryLog again;
    cursor.replayRange(again, ranges[0]);
    EXPECT_EQ(again.log, expected[0]);
}

TEST(StreamingTrace, SliceAtPartitionsAtEveryEventBoundary)
{
    // Cuts at every event-start access clock — the finest slicing
    // sliceAt supports, crossing every frame boundary by construction.
    // Replaying all ranges in order must reproduce the live stream.
    constexpr uint64_t frameTarget = 512;
    DeliveryLog direct;
    MemoryTrace trace = recordMultiFrame(300, frameTarget, 7, &direct);
    ASSERT_GT(trace.sealedFrameCount(), 2u);

    auto fine = trace.chunks(1); // one event-ish per chunk
    std::vector<uint64_t> cuts;
    for (const auto &r : fine)
        if (r.firstAccess != 0 || !cuts.empty())
            cuts.push_back(r.firstAccess);
    auto ranges = trace.sliceAt(cuts);
    ASSERT_EQ(ranges.size(), cuts.size() + 1);

    DeliveryLog sliced;
    TraceCursor cursor(trace);
    size_t events = 0;
    uint64_t accesses = 0;
    for (const auto &r : ranges) {
        EXPECT_EQ(r.firstEvent, events);
        EXPECT_EQ(r.firstAccess, accesses);
        cursor.replayRange(sliced, r);
        events += r.eventCount;
        accesses += r.accessCount;
    }
    EXPECT_EQ(events, trace.eventCount());
    EXPECT_EQ(accesses, trace.accessCount());
    EXPECT_EQ(sliced.log, direct.log);
}

TEST(StreamingTrace, SliceAtDuplicateAndBoundaryCutsYieldEmptyRanges)
{
    DeliveryLog direct;
    MemoryTrace trace = recordMultiFrame(150, 256, 8, &direct);
    const uint64_t total = trace.accessCount();
    const uint64_t mid = total / 2;

    // Cut at zero, a duplicated interior cut, and the end of the
    // recording: the duplicate yields a zero-length range and the
    // trailing range carries only zero-access events (if any).
    auto ranges = trace.sliceAt({0, mid, mid, total});
    ASSERT_EQ(ranges.size(), 5u);
    EXPECT_EQ(ranges[0].eventCount, 0u);
    EXPECT_EQ(ranges[0].accessCount, 0u);
    EXPECT_EQ(ranges[2].accessCount, 0u);
    EXPECT_EQ(ranges[4].accessCount, 0u);

    // A zero-length range replays nothing, and a cursor survives
    // being handed one between real ranges (a seek to a position it
    // is already at, or a no-op jump).
    TraceCursor cursor(trace);
    DeliveryLog sliced;
    for (const auto &r : ranges)
        cursor.replayRange(sliced, r);
    EXPECT_EQ(sliced.log, direct.log);

    DeliveryLog empty;
    TraceCursor fresh(trace);
    fresh.replayRange(empty, ranges[2]);
    EXPECT_TRUE(empty.log.empty());
}

TEST(StreamingTrace, CursorSeeksForwardAndBackwardAcrossFrames)
{
    // Ranges visited out of order with long jumps in both directions:
    // backward seeks must rewind to the owning frame, forward seeks
    // within the current frame must not rewind (same delivered
    // events either way — this pins the seek paths the sampled
    // evaluator leans on).
    DeliveryLog direct;
    MemoryTrace trace = recordMultiFrame(400, 256, 9, &direct);
    ASSERT_GT(trace.sealedFrameCount(), 4u);
    auto ranges = trace.sliceAt(
        {trace.accessCount() / 5, 2 * trace.accessCount() / 5,
         3 * trace.accessCount() / 5, 4 * trace.accessCount() / 5});
    ASSERT_EQ(ranges.size(), 5u);

    std::vector<std::vector<std::string>> expected;
    size_t at = 0;
    for (const auto &r : ranges) {
        expected.emplace_back(
            direct.log.begin() + static_cast<long>(at),
            direct.log.begin() + static_cast<long>(at + r.eventCount));
        at += r.eventCount;
    }

    TraceCursor cursor(trace);
    for (size_t i : {2u, 4u, 0u, 3u, 1u, 3u}) {
        DeliveryLog got;
        cursor.replayRange(got, ranges[i]);
        EXPECT_EQ(got.log, expected[i]) << "range " << i;
    }
}

TEST(StreamingTrace, MultiFrameStoreRoundTrip)
{
    fs::path dir = fs::temp_directory_path() /
                   ("lpp_streaming_test_" + std::to_string(::getpid()));
    fs::remove_all(dir);

    DeliveryLog direct;
    MemoryTrace trace = recordMultiFrame(300, 512, 5, &direct);
    ASSERT_GT(trace.sealedFrameCount(), 2u);

    lpp::trace::TraceStore store(dir.string());
    ASSERT_GT(store.store("w@s1:x1", 9, trace, {}), 0u);

    // Zero-decode load adopts the compressed frames; replay of the
    // loaded recording is bit-identical to the live stream.
    MemoryTrace loaded;
    loaded.setFrameTargetAccesses(512);
    ASSERT_TRUE(store.load("w@s1:x1", 9, loaded));
    EXPECT_EQ(loaded.frameCount(), trace.frameCount());
    DeliveryLog replayed;
    loaded.replay(replayed);
    EXPECT_EQ(replayed.log, direct.log);

    // Streaming store replay (no adoption) delivers the same stream.
    DeliveryLog streamed;
    ASSERT_TRUE(store.replay("w@s1:x1", 9, streamed));
    EXPECT_EQ(streamed.log, direct.log);

    fs::remove_all(dir);
}

TEST(StreamingTrace, CompressesStridedStreamsWell)
{
    MemoryTrace trace = recordMultiFrame(2000, 1u << 20, 6);
    ASSERT_GT(trace.accessCount(), 10000u);
    // The bench enforces >= 4x on the real workloads; the synthetic
    // strided stream here must compress at least that well.
    EXPECT_GE(static_cast<double>(trace.rawBytes()),
              4.0 * static_cast<double>(trace.encodedBytes()));
}

} // namespace
