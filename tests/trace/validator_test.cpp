/**
 * @file
 * ValidatingSink contract tests: each violation class is caught by a
 * seeded bad stream, clean streams (including every workload end to
 * end) report zero violations, and the decorator forwards the stream
 * unmodified.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "trace/recorder.hpp"
#include "trace/sink.hpp"
#include "trace/validator.hpp"
#include "workloads/emitter.hpp"
#include "workloads/registry.hpp"
#include "workloads/workload.hpp"

namespace {

using lpp::trace::Addr;
using lpp::trace::BlockId;
using lpp::trace::ValidatingSink;
using lpp::trace::ValidatorConfig;
using Kind = ValidatingSink::Kind;

TEST(ValidatingSink, CleanStreamReportsOk)
{
    ValidatingSink v;
    v.onBlock(1, 10);
    Addr batch[] = {8, 16, 24};
    v.onAccessBatch(batch, 3);
    v.onAccess(32);
    v.onManualMarker(1);
    v.onEnd();
    EXPECT_TRUE(v.ok());
    EXPECT_EQ(v.totalViolations(), 0u);
    EXPECT_EQ(v.eventsSeen(), 5u);
    EXPECT_TRUE(v.ended());
}

TEST(ValidatingSink, CatchesUnflushedBatchBeforeBlock)
{
    ValidatingSink v;
    lpp::workloads::AddressSpace as;
    auto arr = as.allocate("a", 64);
    // The emitter registers itself with the validator it feeds.
    lpp::workloads::Emitter e(v);
    e.touch(arr, 0);
    e.touch(arr, 1);
    // Buggy producer: talks to the sink directly while the emitter
    // still buffers two accesses.
    v.onBlock(1, 10);
    EXPECT_FALSE(v.ok());
    EXPECT_EQ(v.countOf(Kind::UnflushedBatch), 1u);
    ASSERT_EQ(v.violations().size(), 1u);
    EXPECT_EQ(v.violations()[0].kind, Kind::UnflushedBatch);

    // The emitter's own block() flushes first: no new violation.
    e.block(2, 10);
    EXPECT_EQ(v.countOf(Kind::UnflushedBatch), 1u);
    e.end();
}

TEST(ValidatingSink, CatchesUnflushedBatchBeforeMarkerAndEnd)
{
    ValidatingSink v;
    lpp::workloads::AddressSpace as;
    auto arr = as.allocate("a", 64);
    lpp::workloads::Emitter e(v);
    e.touch(arr, 0);
    v.onManualMarker(7);
    EXPECT_EQ(v.countOf(Kind::UnflushedBatch), 1u);
    v.onEnd();
    EXPECT_EQ(v.countOf(Kind::UnflushedBatch), 2u);
    e.flush();
}

TEST(ValidatingSink, CatchesBlockOutOfRange)
{
    ValidatorConfig cfg;
    cfg.blockLimit = 100;
    ValidatingSink v(nullptr, cfg);
    v.onBlock(99, 5);
    EXPECT_TRUE(v.ok());
    v.onBlock(100, 5);
    EXPECT_EQ(v.countOf(Kind::BlockOutOfRange), 1u);
    v.onEnd();
    EXPECT_EQ(v.totalViolations(), 1u);
}

TEST(ValidatingSink, CatchesInstructionsOutOfRange)
{
    ValidatorConfig cfg;
    cfg.minBlockInstructions = 1;
    cfg.maxBlockInstructions = 1000;
    ValidatingSink v(nullptr, cfg);
    v.onBlock(1, 0); // below the band
    EXPECT_EQ(v.countOf(Kind::InstructionsOutOfRange), 1u);
    v.onBlock(1, 1001); // above the band
    EXPECT_EQ(v.countOf(Kind::InstructionsOutOfRange), 2u);
    v.onBlock(1, 1000); // at the edge: fine
    EXPECT_EQ(v.countOf(Kind::InstructionsOutOfRange), 2u);
}

TEST(ValidatingSink, CatchesAddressOutOfRange)
{
    ValidatingSink v;
    v.allowRange(0x1000, 0x2000);
    v.allowRange(0x8000, 0x9000);
    v.onAccess(0x1000);
    v.onAccess(0x1fff);
    v.onAccess(0x8123);
    EXPECT_TRUE(v.ok());
    v.onAccess(0x2000); // one past the first range
    EXPECT_EQ(v.countOf(Kind::AddressOutOfRange), 1u);
    v.onAccess(0xfff); // one before the first range
    EXPECT_EQ(v.countOf(Kind::AddressOutOfRange), 2u);
    Addr batch[] = {0x8000, 0x9000, 0x1800};
    v.onAccessBatch(batch, 3); // middle element out of range
    EXPECT_EQ(v.countOf(Kind::AddressOutOfRange), 3u);
}

TEST(ValidatingSink, NoRangesMeansEveryAddressAllowed)
{
    ValidatingSink v;
    v.onAccess(0);
    v.onAccess(~Addr{0});
    EXPECT_TRUE(v.ok());
}

TEST(ValidatingSink, CatchesEventsAfterEnd)
{
    ValidatingSink v;
    v.onEnd();
    v.onAccess(8);
    EXPECT_EQ(v.countOf(Kind::EventAfterEnd), 1u);
    v.onBlock(1, 5);
    EXPECT_EQ(v.countOf(Kind::EventAfterEnd), 2u);
    Addr batch[] = {8};
    v.onAccessBatch(batch, 1);
    EXPECT_EQ(v.countOf(Kind::EventAfterEnd), 3u);
    v.onManualMarker(1);
    EXPECT_EQ(v.countOf(Kind::EventAfterEnd), 4u);
}

TEST(ValidatingSink, CatchesDoubleEnd)
{
    ValidatingSink v;
    v.onEnd();
    v.onEnd();
    EXPECT_EQ(v.countOf(Kind::DoubleEnd), 1u);
    EXPECT_EQ(v.totalViolations(), 1u);
}

TEST(ValidatingSink, DoubleEndIsNotForwardedDownstream)
{
    // Downstream sinks may treat onEnd as terminal; the validator
    // absorbs the duplicate.
    struct EndCounter : lpp::trace::TraceSink
    {
        int ends = 0;
        void onEnd() override { ++ends; }
    } down;
    ValidatingSink v(&down);
    v.onEnd();
    v.onEnd();
    EXPECT_EQ(down.ends, 1);
}

TEST(ValidatingSink, ForwardsTheStreamUnmodified)
{
    lpp::trace::AccessRecorder direct;
    lpp::trace::AccessRecorder validated;
    ValidatingSink v(&validated);
    std::vector<Addr> addrs = {8, 64, 8, 512, 40};
    for (Addr a : addrs) {
        direct.onAccess(a);
        v.onAccess(a);
    }
    direct.onEnd();
    v.onEnd();
    EXPECT_EQ(validated.accesses(), direct.accesses());
}

TEST(ValidatingSink, RecordingIsBoundedButCountingIsNot)
{
    ValidatorConfig cfg;
    cfg.maxRecorded = 4;
    ValidatingSink v(nullptr, cfg);
    v.onEnd();
    for (int i = 0; i < 100; ++i)
        v.onAccess(8);
    EXPECT_EQ(v.totalViolations(), 100u);
    EXPECT_EQ(v.violations().size(), 4u);
    EXPECT_NE(v.reportText().find("96 more"), std::string::npos);
}

TEST(ValidatingSink, ReportTextNamesTheClause)
{
    ValidatorConfig cfg;
    cfg.blockLimit = 10;
    ValidatingSink v(nullptr, cfg);
    v.onBlock(11, 5);
    EXPECT_NE(v.reportText().find("block-out-of-range"),
              std::string::npos);
}

/**
 * End-to-end: every workload's training run, validated against the
 * address space it declares and the block IDs it actually uses, must
 * be contract-clean. Catches workloads touching undeclared memory,
 * dropping flushes, or double-ending.
 */
TEST(ValidatingSink, AllWorkloadsRunContractClean)
{
    for (const auto &name : lpp::workloads::allNames()) {
        auto w = lpp::workloads::create(name);
        ASSERT_NE(w, nullptr) << name;
        auto input = w->trainInput();

        // Discovery run: the block IDs the workload actually emits.
        lpp::trace::BlockRecorder blocks;
        w->run(input, blocks);
        BlockId max_block = 0;
        for (const auto &ev : blocks.events())
            max_block = std::max(max_block, ev.block);

        ValidatorConfig cfg;
        cfg.blockLimit = max_block + 1;
        ValidatingSink v(nullptr, cfg);
        for (const auto &arr : w->arrays(input))
            v.allowRange(arr.base, arr.end());

        w->run(input, v);
        EXPECT_TRUE(v.ok()) << name << ": " << v.reportText();
        EXPECT_TRUE(v.ended()) << name << " never called onEnd";
        EXPECT_GT(v.eventsSeen(), 0u) << name;
    }
}

} // namespace
