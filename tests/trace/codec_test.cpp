/**
 * @file
 * Codec tests: delta + varint encoding of trace event streams must be
 * a bit-exact inverse of decoding, including access-batch boundaries,
 * and the decoder must reject every form of malformed input.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/random.hpp"
#include "trace/codec.hpp"
#include "trace/memory_trace.hpp"

namespace {

using lpp::trace::Addr;
using lpp::trace::MemoryTrace;
using lpp::trace::TraceEncoder;

/** Records the stream as a flat, comparable event list. */
struct FlatSink : lpp::trace::TraceSink
{
    struct Event
    {
        char kind;
        uint64_t a = 0, b = 0;
        std::vector<Addr> addrs;
        bool
        operator==(const Event &o) const
        {
            return kind == o.kind && a == o.a && b == o.b &&
                   addrs == o.addrs;
        }
    };
    std::vector<Event> events;

    void
    onBlock(lpp::trace::BlockId block, uint32_t instructions) override
    {
        events.push_back({'B', block, instructions, {}});
    }
    void
    onAccess(Addr addr) override
    {
        events.push_back({'a', addr, 0, {}});
    }
    void
    onAccessBatch(const Addr *addrs, size_t n) override
    {
        events.push_back({'V', n, 0, std::vector<Addr>(addrs, addrs + n)});
    }
    void
    onManualMarker(uint32_t marker_id) override
    {
        events.push_back({'M', marker_id, 0, {}});
    }
    void
    onPhaseMarker(lpp::trace::PhaseId phase) override
    {
        events.push_back({'P', phase, 0, {}});
    }
    void onEnd() override { events.push_back({'E', 0, 0, {}}); }
};

/** A stream exercising every opcode, batch boundaries, and extreme
 *  address jumps (both directions, full 64-bit range). */
MemoryTrace
mixedTrace()
{
    MemoryTrace t;
    t.onBlock(3, 17);
    t.onAccess(0x10000);
    t.onAccess(0x10008); // +8 delta
    t.onAccess(0x0FFF8); // negative delta
    std::vector<Addr> batch1{0x20000, 0x20008, 0x20010, 0x1FFF0,
                             0xFFFFFFFFFFFFFFFFull, 0, 42};
    t.onAccessBatch(batch1.data(), batch1.size());
    t.onManualMarker(7);
    t.onBlock(1, 2); // negative block delta
    std::vector<Addr> batch2{5, 5, 5};
    t.onAccessBatch(batch2.data(), batch2.size());
    t.onAccessBatch(batch2.data(), 0); // empty batch survives
    t.onPhaseMarker(9);
    t.onAccess(0x30000);
    t.onEnd();
    return t;
}

TEST(TraceCodec, RoundTripPreservesEveryEventAndBatchBoundary)
{
    auto trace = mixedTrace();
    auto payload = lpp::trace::encodeTrace(trace);
    ASSERT_FALSE(payload.empty());

    FlatSink direct;
    trace.replay(direct);

    FlatSink decoded;
    uint64_t events = 0, accesses = 0;
    ASSERT_TRUE(lpp::trace::decodeTrace(payload.data(), payload.size(),
                                        decoded, &events, &accesses));
    EXPECT_EQ(decoded.events, direct.events);
    EXPECT_EQ(events, trace.eventCount());
    EXPECT_EQ(accesses, trace.accessCount());
}

TEST(TraceCodec, EncoderCountsMatchTrace)
{
    auto trace = mixedTrace();
    TraceEncoder enc;
    trace.replay(enc);
    EXPECT_EQ(enc.eventCount(), trace.eventCount());
    EXPECT_EQ(enc.accessCount(), trace.accessCount());
    EXPECT_EQ(enc.bytes().size(), lpp::trace::encodeTrace(trace).size());
}

TEST(TraceCodec, LocalStreamsCompressWell)
{
    // A sequential sweep (the dominant workload pattern) should cost
    // far less than the 8 raw bytes per address.
    MemoryTrace t;
    std::vector<Addr> batch(4096);
    Addr a = 0x100000;
    for (int rep = 0; rep < 8; ++rep) {
        for (auto &x : batch)
            x = (a += 8);
        t.onAccessBatch(batch.data(), batch.size());
    }
    t.onEnd();
    auto payload = lpp::trace::encodeTrace(t);
    EXPECT_LT(payload.size(), t.accessCount() * 2);

    FlatSink decoded, direct;
    t.replay(direct);
    ASSERT_TRUE(lpp::trace::decodeTrace(payload.data(), payload.size(),
                                        decoded));
    EXPECT_EQ(decoded.events, direct.events);
}

TEST(TraceCodec, RandomizedRoundTrip)
{
    lpp::Rng rng(12345);
    MemoryTrace t;
    std::vector<Addr> batch;
    for (int i = 0; i < 2000; ++i) {
        switch (rng.below(6)) {
          case 0:
            t.onBlock(static_cast<lpp::trace::BlockId>(rng.below(64)),
                      static_cast<uint32_t>(rng.below(1000)));
            break;
          case 1:
            t.onAccess(rng.next());
            break;
          case 2: {
            batch.resize(rng.below(300));
            for (auto &x : batch)
                x = rng.next();
            t.onAccessBatch(batch.data(), batch.size());
            break;
          }
          case 3:
            t.onManualMarker(static_cast<uint32_t>(rng.below(16)));
            break;
          case 4:
            t.onPhaseMarker(
                static_cast<lpp::trace::PhaseId>(rng.below(16)));
            break;
          case 5:
            t.onEnd();
            break;
        }
    }
    auto payload = lpp::trace::encodeTrace(t);
    FlatSink decoded, direct;
    t.replay(direct);
    uint64_t events = 0, accesses = 0;
    ASSERT_TRUE(lpp::trace::decodeTrace(payload.data(), payload.size(),
                                        decoded, &events, &accesses));
    EXPECT_EQ(decoded.events, direct.events);
    EXPECT_EQ(events, t.eventCount());
    EXPECT_EQ(accesses, t.accessCount());
}

TEST(TraceCodec, RejectsTruncationAtEveryLength)
{
    auto payload = lpp::trace::encodeTrace(mixedTrace());
    // Decoding any strict prefix must either fail or decode fewer
    // events — never crash, never read past the buffer.
    FlatSink full;
    ASSERT_TRUE(lpp::trace::decodeTrace(payload.data(), payload.size(),
                                        full));
    for (size_t cut = 0; cut < payload.size(); ++cut) {
        FlatSink sink;
        uint64_t events = 0;
        bool ok = lpp::trace::decodeTrace(payload.data(), cut, sink,
                                          &events);
        if (ok) {
            EXPECT_LT(events, full.events.size());
        }
    }
}

TEST(TraceCodec, RejectsUnknownOpcodeAndOversizedBatch)
{
    std::vector<uint8_t> bad{0xFF};
    FlatSink sink;
    EXPECT_FALSE(lpp::trace::decodeTrace(bad.data(), bad.size(), sink));

    // Batch claiming more deltas than bytes remain: must be rejected
    // before any allocation of that size.
    std::vector<uint8_t> huge{2 /* Batch */, 0xFF, 0xFF, 0xFF, 0xFF,
                              0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
    EXPECT_FALSE(
        lpp::trace::decodeTrace(huge.data(), huge.size(), sink));
}

TEST(TraceCodec, ContentHashDetectsBitFlips)
{
    auto payload = lpp::trace::encodeTrace(mixedTrace());
    auto h = lpp::trace::contentHash64(payload.data(), payload.size());
    for (size_t i = 0; i < payload.size(); i += 7) {
        payload[i] ^= 0x10;
        EXPECT_NE(h, lpp::trace::contentHash64(payload.data(),
                                               payload.size()));
        payload[i] ^= 0x10;
    }
    EXPECT_EQ(h, lpp::trace::contentHash64(payload.data(),
                                           payload.size()));
    // Truncation changes the hash too (size is part of the seed).
    EXPECT_NE(h, lpp::trace::contentHash64(payload.data(),
                                           payload.size() - 1));
}

} // namespace
