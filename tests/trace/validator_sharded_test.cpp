/**
 * @file
 * ValidatingSink under sharded replay: the protocol checks must hold
 * across MemoryTrace::replayRange chunk boundaries at every chunk
 * size — chunks partition the event stream without splitting batches,
 * so a validator fed chunk by chunk must see exactly the stream a
 * full replay delivers, violations included.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "trace/memory_trace.hpp"
#include "trace/validator.hpp"
#include "workloads/emitter.hpp"
#include "workloads/registry.hpp"
#include "workloads/static_workload.hpp"
#include "workloads/workload.hpp"

namespace {

using lpp::trace::MemoryTrace;
using lpp::trace::ValidatingSink;
using lpp::trace::ValidatorConfig;
using Kind = ValidatingSink::Kind;

/** A clean synthetic stream: markers, blocks, batches, one end. */
struct Recorded
{
    MemoryTrace trace;
    lpp::workloads::ArrayInfo a, b;
};

Recorded
recordCleanStream()
{
    Recorded r;
    lpp::workloads::AddressSpace as;
    r.a = as.allocate("A", 96);
    r.b = as.allocate("B", 64);
    lpp::workloads::Emitter e(r.trace);
    for (int round = 0; round < 4; ++round) {
        e.marker(static_cast<uint32_t>(round));
        for (uint64_t i = 0; i < r.a.elements; ++i) {
            e.block(10, 12);
            e.touch(r.a, i);
        }
        for (uint64_t i = 0; i < r.b.elements; ++i) {
            e.block(11, 9);
            e.touch(r.b, i);
            e.touch(r.b, r.b.elements - 1 - i);
        }
    }
    e.end();
    return r;
}

/** Validator configured with the stream's real contract. */
ValidatingSink
strictValidator(const Recorded &r)
{
    ValidatorConfig cfg;
    cfg.blockLimit = 12;
    cfg.maxBlockInstructions = 16;
    ValidatingSink v(nullptr, cfg);
    v.allowRange(r.a.base, r.a.end());
    v.allowRange(r.b.base, r.b.end());
    return v;
}

/** Replay `trace` into `sink` in chunks of `target` accesses. */
void
replayChunked(const MemoryTrace &trace, lpp::trace::TraceSink &sink,
              uint64_t target)
{
    uint64_t accesses = 0;
    size_t events = 0;
    for (const auto &range : trace.chunks(target)) {
        // Chunks partition the stream in order.
        EXPECT_EQ(range.firstEvent, events);
        EXPECT_EQ(range.firstAccess, accesses);
        trace.replayRange(sink, range);
        events += range.eventCount;
        accesses += range.accessCount;
    }
    EXPECT_EQ(events, trace.eventCount());
    EXPECT_EQ(accesses, trace.accessCount());
}

TEST(ValidatorSharded, CleanStreamOkAtEveryChunkSize)
{
    Recorded r = recordCleanStream();
    const uint64_t len = r.trace.accessCount();
    // Chunk size 1 (maximal fragmentation, modulo unsplittable
    // batches), a prime, the whole trace, and beyond the trace.
    for (uint64_t target : {uint64_t{1}, uint64_t{7}, len, len + 100}) {
        ValidatingSink v = strictValidator(r);
        replayChunked(r.trace, v, target);
        EXPECT_TRUE(v.ok()) << "chunk target " << target;
        EXPECT_EQ(v.totalViolations(), 0u) << "chunk target " << target;
        EXPECT_TRUE(v.ended()) << "chunk target " << target;
    }

    // Chunk size above the length yields exactly one chunk.
    EXPECT_EQ(r.trace.chunks(len + 100).size(), 1u);
}

TEST(ValidatorSharded, ChunkedEqualsFullReplayViolationForViolation)
{
    Recorded r = recordCleanStream();
    // A validator that disallows B: every B access is a violation,
    // and the count must not depend on chunking.
    auto narrow = [&r] {
        ValidatorConfig cfg;
        cfg.blockLimit = 12;
        cfg.maxBlockInstructions = 16;
        ValidatingSink v(nullptr, cfg);
        v.allowRange(r.a.base, r.a.end());
        return v;
    };

    ValidatingSink full = narrow();
    r.trace.replay(full);
    ASSERT_FALSE(full.ok());
    ASSERT_GT(full.countOf(Kind::AddressOutOfRange), 0u);

    for (uint64_t target : {uint64_t{1}, uint64_t{7}, uint64_t{1000}}) {
        ValidatingSink v = narrow();
        replayChunked(r.trace, v, target);
        EXPECT_EQ(v.totalViolations(), full.totalViolations())
            << "chunk target " << target;
        EXPECT_EQ(v.countOf(Kind::AddressOutOfRange),
                  full.countOf(Kind::AddressOutOfRange))
            << "chunk target " << target;
        EXPECT_TRUE(v.ended());
    }
}

TEST(ValidatorSharded, EventAfterEndCaughtAcrossChunks)
{
    // Record a stream that keeps emitting after onEnd; the violation
    // must be caught whether the offending event shares a chunk with
    // the end or starts a later one.
    MemoryTrace t;
    t.onBlock(1, 5);
    t.onAccess(8);
    t.onEnd();
    t.onBlock(2, 5); // offending event
    t.onAccess(16);  // offending event

    for (uint64_t target : {uint64_t{1}, uint64_t{10}}) {
        ValidatingSink v;
        for (const auto &range : t.chunks(target))
            t.replayRange(v, range);
        EXPECT_FALSE(v.ok()) << "chunk target " << target;
        EXPECT_GE(v.countOf(Kind::EventAfterEnd), 1u)
            << "chunk target " << target;
    }
}

TEST(ValidatorSharded, StaticWorkloadStreamValidatesChunked)
{
    // End-to-end: a statically described workload's recorded training
    // stream passes strict validation under sharded replay.
    auto w = lpp::workloads::create("stencil3");
    ASSERT_NE(w, nullptr);
    auto input = w->trainInput();

    MemoryTrace trace;
    w->run(input, trace);

    ValidatorConfig cfg;
    cfg.blockLimit = 1024;
    ValidatingSink v(nullptr, cfg);
    for (const auto &arr : w->arrays(input))
        v.allowRange(arr.base, arr.end());

    replayChunked(trace, v, 4096);
    EXPECT_TRUE(v.ok());
    EXPECT_TRUE(v.ended());
    EXPECT_EQ(v.totalViolations(), 0u);
}

} // namespace
