/**
 * @file
 * onAccessBatch contract tests: batched delivery must be observably
 * identical to per-access delivery for every sink, and the batching
 * Emitter must preserve the exact event order around non-access events.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/lru_cache.hpp"
#include "cache/stack_sim.hpp"
#include "core/evaluation.hpp"
#include "reuse/analyzer.hpp"
#include "support/random.hpp"
#include "trace/instrument.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"
#include "workloads/emitter.hpp"
#include "workloads/registry.hpp"

namespace {

using lpp::trace::Addr;

std::vector<Addr>
randomTrace(size_t n, uint64_t span, uint64_t seed)
{
    lpp::Rng rng(seed);
    std::vector<Addr> addrs(n);
    for (auto &a : addrs)
        a = rng.below(span) * 8;
    return addrs;
}

/** Deliver `addrs` in batches of irregular sizes. */
void
deliverBatched(lpp::trace::TraceSink &sink, const std::vector<Addr> &addrs)
{
    static const size_t sizes[] = {1, 7, 64, 3, 1000, 2, 4096, 13};
    size_t i = 0, s = 0;
    while (i < addrs.size()) {
        size_t take = std::min(sizes[s % 8], addrs.size() - i);
        sink.onAccessBatch(addrs.data() + i, take);
        i += take;
        ++s;
    }
    sink.onEnd();
}

void
deliverSingly(lpp::trace::TraceSink &sink, const std::vector<Addr> &addrs)
{
    for (Addr a : addrs)
        sink.onAccess(a);
    sink.onEnd();
}

testing::AssertionResult
sameHistogram(const lpp::LogHistogram &a, const lpp::LogHistogram &b)
{
    if (a.total() != b.total() ||
        a.infiniteCount() != b.infiniteCount() ||
        a.binCount() != b.binCount())
        return testing::AssertionFailure() << "histogram shape differs";
    for (size_t i = 0; i < a.binCount(); ++i)
        if (a.binValue(i) != b.binValue(i))
            return testing::AssertionFailure()
                   << "bin " << i << ": " << a.binValue(i)
                   << " != " << b.binValue(i);
    return testing::AssertionSuccess();
}

TEST(AccessBatch, ReuseAnalyzerEquivalence)
{
    auto addrs = randomTrace(50000, 4096, 1);
    lpp::reuse::ReuseAnalyzer one, batched;
    deliverSingly(one, addrs);
    deliverBatched(batched, addrs);
    EXPECT_EQ(one.accessCount(), batched.accessCount());
    EXPECT_EQ(one.distinctElements(), batched.distinctElements());
    EXPECT_TRUE(sameHistogram(one.histogram(), batched.histogram()));
}

TEST(AccessBatch, ReuseAnalyzerHintedEquivalence)
{
    auto addrs = randomTrace(50000, 4096, 2);
    lpp::reuse::ReuseAnalyzer plain, hinted(4096);
    deliverSingly(plain, addrs);
    deliverBatched(hinted, addrs);
    EXPECT_TRUE(sameHistogram(plain.histogram(), hinted.histogram()));
}

TEST(AccessBatch, StackSimulatorEquivalence)
{
    auto addrs = randomTrace(60000, 1 << 16, 3);
    lpp::cache::StackSimulator one, batched;
    deliverSingly(one, addrs);
    deliverBatched(batched, addrs);
    auto t1 = one.total(), t2 = batched.total();
    EXPECT_EQ(t1.accesses, t2.accesses);
    EXPECT_EQ(t1.misses, t2.misses);
}

TEST(AccessBatch, LruCacheEquivalence)
{
    auto addrs = randomTrace(60000, 1 << 16, 4);
    lpp::cache::LruCache one, batched;
    deliverSingly(one, addrs);
    deliverBatched(batched, addrs);
    EXPECT_EQ(one.accesses(), batched.accesses());
    EXPECT_EQ(one.misses(), batched.misses());
}

TEST(AccessBatch, ClockAndRecorderEquivalence)
{
    auto addrs = randomTrace(10000, 256, 5);
    lpp::trace::ClockSink clock;
    lpp::trace::AccessRecorder rec;
    lpp::trace::FanoutSink fan;
    fan.attach(&clock);
    fan.attach(&rec);
    deliverBatched(fan, addrs);
    EXPECT_EQ(clock.accesses(), addrs.size());
    EXPECT_EQ(rec.accesses(), addrs);
}

TEST(AccessBatch, DefaultImplementationForwardsInOrder)
{
    // A sink that only overrides onAccess must see the identical
    // per-access stream through the batch default.
    class Collect : public lpp::trace::TraceSink
    {
      public:
        void onAccess(Addr a) override { seen.push_back(a); }
        std::vector<Addr> seen;
    };
    auto addrs = randomTrace(5000, 64, 6);
    Collect c;
    deliverBatched(c, addrs);
    EXPECT_EQ(c.seen, addrs);
}

TEST(AccessBatch, InstrumenterForwardsBatches)
{
    lpp::trace::MarkerTable table;
    table.set(42, 7);
    lpp::trace::MarkerFiringRecorder rec;
    lpp::trace::Instrumenter inst(table, rec);
    auto addrs = randomTrace(1000, 64, 7);
    inst.onAccessBatch(addrs.data(), addrs.size());
    inst.onBlock(42, 10);
    inst.onEnd();
    ASSERT_EQ(rec.firings().size(), 1u);
    EXPECT_EQ(rec.firings()[0].accessTime, addrs.size());
    EXPECT_EQ(rec.totalAccesses(), addrs.size());
}

/** Records the full event sequence for order comparisons. */
class EventLog : public lpp::trace::TraceSink
{
  public:
    void
    onBlock(lpp::trace::BlockId b, uint32_t instrs) override
    {
        log.push_back("B" + std::to_string(b) + ":" +
                      std::to_string(instrs));
    }

    void
    onAccess(Addr a) override
    {
        log.push_back("A" + std::to_string(a));
    }

    void
    onManualMarker(uint32_t id) override
    {
        log.push_back("M" + std::to_string(id));
    }

    void onEnd() override { log.push_back("E"); }

    std::vector<std::string> log;
};

TEST(AccessBatch, EmitterPreservesEventOrder)
{
    // The emitter buffers accesses but must flush before every
    // non-access event, so the observed sequence equals unbuffered
    // emission.
    lpp::workloads::ArrayInfo arr{"A", 0x1000, 1 << 20, 8};

    EventLog buffered;
    {
        lpp::workloads::Emitter e(buffered);
        e.block(1, 10);
        e.touch(arr, 0);
        e.touch(arr, 1);
        e.block(2, 20);
        e.touch(arr, 2);
        e.marker(9);
        // A run long enough to force a capacity flush mid-stream.
        for (uint64_t i = 0; i < 3 * lpp::workloads::Emitter::batchCapacity;
             ++i)
            e.touch(arr, i);
        e.end();
    }

    EventLog direct;
    direct.onBlock(1, 10);
    direct.onAccess(arr.at(0));
    direct.onAccess(arr.at(1));
    direct.onBlock(2, 20);
    direct.onAccess(arr.at(2));
    direct.onManualMarker(9);
    for (uint64_t i = 0; i < 3 * lpp::workloads::Emitter::batchCapacity;
         ++i)
        direct.onAccess(arr.at(i));
    direct.onEnd();

    EXPECT_EQ(buffered.log, direct.log);
}

TEST(AccessBatch, EmitterDestructorFlushes)
{
    lpp::workloads::ArrayInfo arr{"A", 0, 64, 8};
    EventLog log;
    {
        lpp::workloads::Emitter e(log);
        e.touch(arr, 5);
        // No end(): destructor must still deliver the buffered access.
    }
    ASSERT_EQ(log.log.size(), 1u);
    EXPECT_EQ(log.log[0], "A40");
}

TEST(AccessBatch, WorkloadRunsIdenticallyThroughEmitter)
{
    // End-to-end: a real workload driven twice must produce the same
    // event stream (batching is internal and must not be observable).
    auto w = lpp::workloads::create("compress");
    ASSERT_NE(w, nullptr);
    auto in = w->trainInput();
    EventLog a, b;
    w->run(in, a);
    w->run(in, b);
    EXPECT_EQ(a.log, b.log);
    EXPECT_GT(a.log.size(), 1000u);
}

TEST(AccessBatch, IntervalProfileEquivalence)
{
    // collectIntervals cuts units on access counts; batch delivery with
    // awkward sizes must cut at the same points.
    auto addrs = randomTrace(25000, 1 << 12, 8);
    auto runSingly = [&](lpp::trace::TraceSink &s) {
        for (Addr a : addrs)
            s.onAccess(a);
        s.onEnd();
    };
    auto runBatched = [&](lpp::trace::TraceSink &s) {
        deliverBatched(s, addrs);
    };
    auto p1 = lpp::core::collectIntervals(runSingly, 1000);
    auto p2 = lpp::core::collectIntervals(runBatched, 1000);
    ASSERT_EQ(p1.units.size(), p2.units.size());
    for (size_t i = 0; i < p1.units.size(); ++i) {
        EXPECT_EQ(p1.units[i].accesses, p2.units[i].accesses);
        EXPECT_EQ(p1.units[i].misses, p2.units[i].misses);
    }
}

} // namespace
