/**
 * @file
 * Frame-codec robustness: the predictor learns strided and periodic
 * reference patterns, the LZ section transform round-trips and rejects
 * malformed input at every truncation point, and frame decoding
 * survives arbitrary payload corruption without undefined behavior —
 * corruption surfaces as a clean unpack failure or decoder Error.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/random.hpp"
#include "trace/codec.hpp"
#include "trace/memory_trace.hpp"
#include "trace/sink.hpp"

namespace {

using lpp::trace::Addr;
using lpp::trace::FrameDecoder;
using lpp::trace::FrameEncoder;
using lpp::trace::FrameInfo;
using lpp::trace::FrameSections;
using lpp::trace::MemoryTrace;
using lpp::trace::PredictorConfig;

// Predictor learning ------------------------------------------------

TEST(FrameCodec, PredictorLearnsConstantStride)
{
    FrameEncoder enc{PredictorConfig{}};
    enc.onBlock(7, 10);
    for (int i = 0; i < 10000; ++i)
        enc.onAccess(0x1000 + 8 * static_cast<Addr>(i));
    // After the cold start (one misprediction per predictor lane, 64
    // lanes) the stride pattern predicts every access: the residue
    // stays a couple hundred bytes, not 10000 varints.
    EXPECT_LT(enc.residueSection().size(), 256u);
}

TEST(FrameCodec, PredictorLearnsPeriodicStridePattern)
{
    // Period-2 stride pattern (+8, +56, +8, +56, ...) per lane: the
    // stride-history ring keys slot 1 to it.
    FrameEncoder enc{PredictorConfig{}};
    enc.onBlock(3, 10);
    Addr a = 0x4000;
    for (int i = 0; i < 10000; ++i) {
        enc.onAccess(a);
        a += (i % 2) ? 56 : 8;
    }
    EXPECT_LT(enc.residueSection().size(), 256u);
}

TEST(FrameCodec, CrossLanePredictionCoversDerivedReferences)
{
    // Random base address per round, but the second access is always
    // base + 8 (a derived reference, like heap[key] then heap[key+1]).
    // The cross-lane mode predicts the second access from the first,
    // so the residue holds ~one varint per round, not two.
    lpp::Rng rng(11);
    FrameEncoder random{PredictorConfig{}};
    FrameEncoder derived{PredictorConfig{}};
    for (int i = 0; i < 8000; ++i) {
        Addr base = 8 * rng.below(1 << 24);
        Addr pair[2] = {base, base + 8};
        random.onBlock(5, 10);
        random.onAccess(base);
        random.onAccess(8 * rng.below(1 << 24));
        derived.onBlock(5, 10);
        derived.onAccessBatch(pair, 2);
    }
    EXPECT_LT(derived.residueSection().size() * 3,
              random.residueSection().size() * 2);
}

// LZ section transform ----------------------------------------------

std::vector<uint8_t>
lzRoundTrip(const std::vector<uint8_t> &src, bool *packed_out = nullptr)
{
    std::vector<uint8_t> packed;
    size_t n = lpp::trace::lzPack(src.data(), src.size(), packed);
    if (packed_out)
        *packed_out = n != 0;
    if (n == 0)
        return src; // stored raw
    EXPECT_EQ(n, packed.size());
    EXPECT_LT(n, src.size());
    std::vector<uint8_t> out(src.size());
    EXPECT_TRUE(lpp::trace::lzUnpack(packed.data(), packed.size(),
                                     out.data(), out.size()));
    return out;
}

TEST(FrameCodec, LzRoundTripsRepetitiveInput)
{
    std::vector<uint8_t> src;
    for (int i = 0; i < 5000; ++i) {
        src.push_back(static_cast<uint8_t>(2));
        src.push_back(static_cast<uint8_t>(i & 3));
        src.push_back(64);
    }
    bool packed = false;
    EXPECT_EQ(lzRoundTrip(src, &packed), src);
    EXPECT_TRUE(packed);
}

TEST(FrameCodec, LzRoundTripsRunLengthOverlaps)
{
    // All-equal bytes force offset-1 overlapping matches (the
    // byte-replication case a memcpy would get wrong).
    std::vector<uint8_t> src(4096, 0xFF);
    bool packed = false;
    EXPECT_EQ(lzRoundTrip(src, &packed), src);
    EXPECT_TRUE(packed);

    // Input ending exactly on a match (no trailing literals).
    std::vector<uint8_t> cut(src.begin(), src.begin() + 100);
    EXPECT_EQ(lzRoundTrip(cut), cut);
}

TEST(FrameCodec, LzStoresIncompressibleAndTinyInputRaw)
{
    lpp::Rng rng(3);
    std::vector<uint8_t> noise(4096);
    for (auto &b : noise)
        b = static_cast<uint8_t>(rng.below(256));
    std::vector<uint8_t> out;
    EXPECT_EQ(lpp::trace::lzPack(noise.data(), noise.size(), out), 0u);
    EXPECT_TRUE(out.empty());

    std::vector<uint8_t> tiny{1, 2, 3};
    EXPECT_EQ(lpp::trace::lzPack(tiny.data(), tiny.size(), out), 0u);
    std::vector<uint8_t> empty;
    EXPECT_EQ(lpp::trace::lzPack(empty.data(), 0, out), 0u);
}

TEST(FrameCodec, LzUnpackRejectsEveryTruncation)
{
    std::vector<uint8_t> src;
    for (int i = 0; i < 600; ++i)
        src.push_back(static_cast<uint8_t>(i % 7));
    std::vector<uint8_t> packed;
    ASSERT_GT(lpp::trace::lzPack(src.data(), src.size(), packed), 0u);

    std::vector<uint8_t> out(src.size());
    for (size_t cut = 0; cut < packed.size(); ++cut)
        EXPECT_FALSE(lpp::trace::lzUnpack(packed.data(), cut,
                                          out.data(), out.size()))
            << "truncated at " << cut;
    // Wrong declared output size is rejected too.
    EXPECT_FALSE(lpp::trace::lzUnpack(packed.data(), packed.size(),
                                      out.data(), out.size() - 1));
}

TEST(FrameCodec, LzUnpackSurvivesBitFlips)
{
    std::vector<uint8_t> src;
    for (int i = 0; i < 800; ++i)
        src.push_back(static_cast<uint8_t>((i * i) % 11));
    std::vector<uint8_t> packed;
    ASSERT_GT(lpp::trace::lzPack(src.data(), src.size(), packed), 0u);

    // Every single-bit corruption either fails cleanly or produces
    // some same-sized output — never reads or writes out of bounds
    // (the asan/ubsan preset turns any violation into a test failure).
    std::vector<uint8_t> out(src.size());
    for (size_t byte = 0; byte < packed.size(); ++byte) {
        std::vector<uint8_t> bad = packed;
        bad[byte] ^= 0x10;
        lpp::trace::lzUnpack(bad.data(), bad.size(), out.data(),
                             out.size());
    }
}

// Frame corruption --------------------------------------------------

/** One sealed multi-section frame from a mixed recorded stream. */
void
sampleFrame(FrameInfo &info, std::vector<uint8_t> &payload)
{
    MemoryTrace trace;
    lpp::Rng rng(5);
    for (int round = 0; round < 200; ++round) {
        trace.onBlock(static_cast<uint32_t>(round % 7), 12);
        std::vector<Addr> batch;
        Addr base = 8 * rng.below(1 << 20);
        for (size_t i = 0; i < 40; ++i)
            batch.push_back(base + 8 * static_cast<Addr>(i));
        trace.onAccessBatch(batch.data(), batch.size());
        trace.onAccess(8 * rng.below(1 << 20));
    }
    trace.onEnd();
    ASSERT_GE(trace.sealedFrameCount(), 1u);
    info = trace.sealedFrame(0).info;
    payload = trace.sealedFrame(0).payload;
}

/** Unpack + fully decode one frame; report the terminal status. */
FrameDecoder::Status
decodeFrame(const FrameInfo &info, const std::vector<uint8_t> &payload)
{
    FrameSections sections;
    if (!lpp::trace::unpackFrame(info, payload.data(), sections))
        return FrameDecoder::Status::Error;
    FrameDecoder dec{PredictorConfig{}};
    dec.begin(info, sections.events, sections.bitmap, sections.residue);
    std::vector<Addr> scratch;
    for (;;) {
        // Null sink: decode (and bounds-check) without delivering.
        FrameDecoder::Status st = dec.next(nullptr, scratch);
        if (st != FrameDecoder::Status::Event)
            return st;
    }
}

TEST(FrameCodec, IntactFrameDecodesToDone)
{
    FrameInfo info;
    std::vector<uint8_t> payload;
    sampleFrame(info, payload);
    EXPECT_GT(info.payloadBytes(), 0u);
    EXPECT_EQ(payload.size(), info.payloadBytes());
    EXPECT_EQ(decodeFrame(info, payload), FrameDecoder::Status::Done);
}

TEST(FrameCodec, CorruptPayloadNeverDecodesToDoneSilently)
{
    FrameInfo info;
    std::vector<uint8_t> payload;
    sampleFrame(info, payload);

    // Flip one bit at a spread of payload positions. Every corruption
    // must surface as a clean unpack failure or decoder Error, or (for
    // a flip that decodes to a different but well-formed stream) as a
    // payload-hash mismatch — never as out-of-bounds access.
    size_t stride = payload.size() / 97 + 1;
    for (size_t byte = 0; byte < payload.size(); byte += stride) {
        for (uint8_t bit : {0x01, 0x80}) {
            std::vector<uint8_t> bad = payload;
            bad[byte] ^= bit;
            FrameDecoder::Status st = decodeFrame(info, bad);
            if (st == FrameDecoder::Status::Done) {
                EXPECT_NE(lpp::trace::contentHash64(bad.data(),
                                                    bad.size()),
                          info.payloadHash)
                    << "undetectable corruption at byte " << byte;
            }
        }
    }
}

TEST(FrameCodec, TruncatedStoredSectionsFailCleanly)
{
    FrameInfo info;
    std::vector<uint8_t> payload;
    sampleFrame(info, payload);

    // Shrink the stored section sizes (as a corrupt frame directory
    // would): unpack must fail or the decoder must error, with every
    // read still inside the smaller buffer.
    for (uint64_t FrameInfo::*field :
         {&FrameInfo::storedEventBytes, &FrameInfo::storedBitmapBytes,
          &FrameInfo::storedResidueBytes}) {
        FrameInfo cut = info;
        if (cut.*field == 0)
            continue;
        cut.*field -= 1;
        std::vector<uint8_t> shorter(payload.begin(),
                                     payload.begin() +
                                         static_cast<long>(
                                             cut.payloadBytes()));
        FrameDecoder::Status st = decodeFrame(cut, shorter);
        EXPECT_NE(st, FrameDecoder::Status::Done);
    }
}

TEST(FrameCodec, InflatedStoredSectionSizeIsRejected)
{
    FrameInfo info;
    std::vector<uint8_t> payload;
    sampleFrame(info, payload);
    // A stored size above the logical size is structurally invalid
    // (packing never grows a section): unpackFrame rejects it without
    // looking at the bytes.
    FrameInfo bad = info;
    bad.storedEventBytes = bad.eventBytes + 1;
    std::vector<uint8_t> grown = payload;
    grown.resize(static_cast<size_t>(bad.payloadBytes()));
    FrameSections sections;
    EXPECT_FALSE(
        lpp::trace::unpackFrame(bad, grown.data(), sections));
}

} // namespace
