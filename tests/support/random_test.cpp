#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/random.hpp"

namespace {

TEST(SplitMix64, DeterministicForSameSeed)
{
    lpp::SplitMix64 a(123);
    lpp::SplitMix64 b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    lpp::SplitMix64 a(1);
    lpp::SplitMix64 b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, DeterministicForSameSeed)
{
    lpp::Rng a(99);
    lpp::Rng b(99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInBounds)
{
    lpp::Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound) << "bound=" << bound;
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    lpp::Rng rng(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusiveBounds)
{
    lpp::Rng rng(11);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u) << "all 7 values should appear";
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    lpp::Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    lpp::Rng rng(17);
    const int n = 50000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    double mean = sum / n;
    double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ChanceExtremes)
{
    lpp::Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequencyMatchesProbability)
{
    lpp::Rng rng(23);
    const int n = 20000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

class RngBoundSweep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RngBoundSweep, BelowCoversWholeRangeForSmallBounds)
{
    uint64_t bound = GetParam();
    lpp::Rng rng(bound * 7919 + 1);
    std::set<uint64_t> seen;
    for (int i = 0; i < 4000; ++i)
        seen.insert(rng.below(bound));
    EXPECT_EQ(seen.size(), bound);
}

INSTANTIATE_TEST_SUITE_P(SmallBounds, RngBoundSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 16, 31));

} // namespace
