#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/csv.hpp"

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class CsvTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("lpp_csv_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir);
    }

    void TearDown() override { std::filesystem::remove_all(dir); }

    std::string
    path(const std::string &name) const
    {
        return (dir / name).string();
    }

    std::filesystem::path dir;
};

TEST_F(CsvTest, WritesHeaderAndRows)
{
    std::string p = path("basic.csv");
    {
        lpp::CsvWriter w(p, {"a", "b"});
        ASSERT_TRUE(w.ok());
        w.row({"1", "2"});
    }
    EXPECT_EQ(slurp(p), "a,b\n1,2\n");
}

TEST_F(CsvTest, EmptyHeaderSkipsHeaderRow)
{
    std::string p = path("nohdr.csv");
    {
        lpp::CsvWriter w(p, {});
        w.row({"x"});
    }
    EXPECT_EQ(slurp(p), "x\n");
}

TEST_F(CsvTest, EscapesCommasQuotesNewlines)
{
    std::string p = path("escape.csv");
    {
        lpp::CsvWriter w(p, {});
        w.row({"a,b", "say \"hi\"", "two\nlines"});
    }
    EXPECT_EQ(slurp(p), "\"a,b\",\"say \"\"hi\"\"\",\"two\nlines\"\n");
}

TEST_F(CsvTest, NumericRowFormatting)
{
    std::string p = path("num.csv");
    {
        lpp::CsvWriter w(p, {});
        w.rowNumeric({1.0, 0.5, 1e9});
    }
    EXPECT_EQ(slurp(p), "1,0.5,1e+09\n");
}

TEST_F(CsvTest, CreatesMissingParentDirectories)
{
    std::string p = path("deep/nested/out.csv");
    {
        lpp::CsvWriter w(p, {"h"});
        ASSERT_TRUE(w.ok());
    }
    EXPECT_TRUE(std::filesystem::exists(p));
}

TEST_F(CsvTest, PathAccessor)
{
    std::string p = path("p.csv");
    lpp::CsvWriter w(p, {});
    EXPECT_EQ(w.path(), p);
}

} // namespace
