#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/random.hpp"
#include "support/stats.hpp"

namespace {

TEST(RunningStats, EmptyDefaults)
{
    lpp::RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    lpp::RunningStats s;
    s.push(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSequence)
{
    lpp::RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic population-variance set
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSinglePass)
{
    lpp::Rng rng(31);
    lpp::RunningStats whole, a, b;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.gaussian() * 3.0 + 1.0;
        whole.push(x);
        (i % 2 ? a : b).push(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity)
{
    lpp::RunningStats a, empty;
    a.push(1.0);
    a.push(3.0);
    double mean = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    EXPECT_EQ(a.count(), 2u);

    lpp::RunningStats b;
    b.merge(a);
    EXPECT_DOUBLE_EQ(b.mean(), mean);
    EXPECT_EQ(b.count(), 2u);
}

TEST(RunningStats, NumericallyStableForShiftedData)
{
    lpp::RunningStats s;
    const double offset = 1e9;
    for (double x : {offset + 1, offset + 2, offset + 3})
        s.push(x);
    EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

TEST(VectorStats, PerComponentIndependence)
{
    lpp::VectorStats vs(2);
    vs.push({1.0, 10.0});
    vs.push({3.0, 10.0});
    EXPECT_EQ(vs.count(), 2u);
    auto mean = vs.mean();
    EXPECT_DOUBLE_EQ(mean[0], 2.0);
    EXPECT_DOUBLE_EQ(mean[1], 10.0);
    auto sd = vs.stddev();
    EXPECT_DOUBLE_EQ(sd[0], 1.0);
    EXPECT_DOUBLE_EQ(sd[1], 0.0);
    EXPECT_DOUBLE_EQ(vs.averageStddev(), 0.5);
}

TEST(VectorStatsDeathTest, DimensionMismatchPanics)
{
    lpp::VectorStats vs(3);
    EXPECT_DEATH(vs.push({1.0, 2.0}), "dimension mismatch");
}

TEST(Quantile, EmptyReturnsZero)
{
    EXPECT_DOUBLE_EQ(lpp::quantile({}, 0.5), 0.0);
}

TEST(Quantile, MedianAndExtremes)
{
    std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(lpp::quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(lpp::quantile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(lpp::quantile(v, 1.0), 5.0);
}

TEST(Quantile, Interpolates)
{
    std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(lpp::quantile(v, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(lpp::quantile(v, 0.75), 7.5);
}

TEST(Quantile, ClampsOutOfRangeP)
{
    std::vector<double> v = {1.0, 2.0};
    EXPECT_DOUBLE_EQ(lpp::quantile(v, -1.0), 1.0);
    EXPECT_DOUBLE_EQ(lpp::quantile(v, 2.0), 2.0);
}

} // namespace
