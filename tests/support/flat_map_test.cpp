#include "support/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/random.hpp"

namespace {

using lpp::support::FlatMap;

TEST(FlatMap, EmptyFindsNothing)
{
    FlatMap<uint64_t> map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(0), nullptr);
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_FALSE(map.erase(42));
}

TEST(FlatMap, InsertFindRoundTrip)
{
    FlatMap<uint64_t> map;
    for (uint64_t k = 0; k < 1000; ++k)
        map.insert(k * 7, k);
    EXPECT_EQ(map.size(), 1000u);
    for (uint64_t k = 0; k < 1000; ++k) {
        auto *v = map.find(k * 7);
        ASSERT_NE(v, nullptr) << "key " << k * 7;
        EXPECT_EQ(*v, k);
    }
    EXPECT_EQ(map.find(3), nullptr);
}

TEST(FlatMap, InsertIsFirstWriterWins)
{
    FlatMap<uint64_t> map;
    EXPECT_EQ(*map.insert(5, 10), 10u);
    EXPECT_EQ(*map.insert(5, 99), 10u); // already present: kept
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(*map.assign(5, 99), 99u); // assign overwrites
    EXPECT_EQ(*map.find(5), 99u);
}

TEST(FlatMap, SubscriptDefaultInserts)
{
    FlatMap<uint64_t> map;
    map[7] = 70;
    EXPECT_EQ(map[7], 70u);
    EXPECT_EQ(map[8], 0u); // default constructed
    EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, GrowthPreservesContents)
{
    FlatMap<uint64_t> map; // starts at minimal capacity, grows many times
    constexpr uint64_t n = 100000;
    for (uint64_t k = 0; k < n; ++k)
        map.insert(k * k + 1, k);
    EXPECT_EQ(map.size(), n);
    for (uint64_t k = 0; k < n; ++k) {
        auto *v = map.find(k * k + 1);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, k);
    }
}

TEST(FlatMap, CollidingKeysAllSurvive)
{
    // Keys chosen so many share low hash bits after mixing is
    // irrelevant: use a tiny table (reserve forces capacity >= 16) and
    // enough keys that long displaced runs must form.
    FlatMap<uint64_t> map;
    std::vector<uint64_t> keys;
    for (uint64_t k = 0; k < 64; ++k)
        keys.push_back(k << 32); // sparse keys, dense table
    for (uint64_t k : keys)
        map.insert(k, ~k);
    for (uint64_t k : keys) {
        auto *v = map.find(k);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, ~k);
    }
}

TEST(FlatMap, EraseBackwardShiftKeepsProbes)
{
    FlatMap<uint64_t> map;
    for (uint64_t k = 0; k < 500; ++k)
        map.insert(k, k);
    // Erase every third key; the rest must stay findable.
    for (uint64_t k = 0; k < 500; k += 3)
        EXPECT_TRUE(map.erase(k));
    for (uint64_t k = 0; k < 500; ++k) {
        if (k % 3 == 0) {
            EXPECT_EQ(map.find(k), nullptr);
        } else {
            auto *v = map.find(k);
            ASSERT_NE(v, nullptr);
            EXPECT_EQ(*v, k);
        }
    }
    EXPECT_EQ(map.size(), 500u - (500u + 2) / 3);
}

TEST(FlatMap, EraseThenReinsert)
{
    FlatMap<uint64_t> map;
    map.insert(1, 10);
    EXPECT_TRUE(map.erase(1));
    EXPECT_EQ(map.find(1), nullptr);
    map.insert(1, 20);
    EXPECT_EQ(*map.find(1), 20u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, ClearRetainsCapacity)
{
    FlatMap<uint64_t> map;
    for (uint64_t k = 0; k < 100; ++k)
        map.insert(k, k);
    size_t cap = map.capacity();
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.capacity(), cap);
    EXPECT_EQ(map.find(5), nullptr);
    map.insert(5, 50);
    EXPECT_EQ(*map.find(5), 50u);
}

TEST(FlatMap, ReservePreventsRehash)
{
    FlatMap<uint64_t> map;
    map.reserve(10000);
    size_t cap = map.capacity();
    for (uint64_t k = 0; k < 10000; ++k)
        map.insert(k * 13 + 1, k);
    EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatMap, ForEachVisitsEveryEntryOnce)
{
    FlatMap<uint64_t> map;
    for (uint64_t k = 0; k < 200; ++k)
        map.insert(k + 1000, k);
    std::unordered_map<uint64_t, uint64_t> seen;
    map.forEach([&seen](uint64_t k, uint64_t v) { ++seen[k]; (void)v; });
    EXPECT_EQ(seen.size(), 200u);
    for (const auto &kv : seen)
        EXPECT_EQ(kv.second, 1u) << "key " << kv.first;
}

TEST(FlatMap, RandomizedAgainstUnorderedMap)
{
    FlatMap<uint64_t> map;
    std::unordered_map<uint64_t, uint64_t> ref;
    lpp::Rng rng(321);
    for (int op = 0; op < 200000; ++op) {
        uint64_t key = rng.below(5000);
        switch (rng.below(3)) {
        case 0: {
            uint64_t val = rng.below(1u << 30);
            map.assign(key, val);
            ref[key] = val;
            break;
        }
        case 1: {
            EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
            break;
        }
        default: {
            auto *v = map.find(key);
            auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(v, nullptr);
            } else {
                ASSERT_NE(v, nullptr);
                EXPECT_EQ(*v, it->second);
            }
        }
        }
        ASSERT_EQ(map.size(), ref.size());
    }
    // Final full cross-check.
    map.forEach([&ref](uint64_t k, uint64_t v) {
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(v, it->second);
    });
}

} // namespace
