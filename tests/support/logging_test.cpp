#include <gtest/gtest.h>

#include "support/logging.hpp"

namespace {

TEST(Logging, VerboseFlagRoundTrips)
{
    lpp::setVerbose(true);
    EXPECT_TRUE(lpp::isVerbose());
    lpp::setVerbose(false);
    EXPECT_FALSE(lpp::isVerbose());
}

TEST(Logging, InformSuppressedWhenQuietDoesNotCrash)
{
    lpp::setVerbose(false);
    lpp::inform("suppressed %d", 1);
    lpp::setVerbose(true);
    lpp::inform("printed %d", 2);
    lpp::setVerbose(false);
}

TEST(Logging, WarnDoesNotTerminate)
{
    lpp::warn("warning %s", "message");
    SUCCEED();
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(lpp::panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeathTest, RequireFailureAborts)
{
    EXPECT_DEATH(LPP_REQUIRE(1 == 2, "math broke: %d", 3), "math broke");
}

TEST(LoggingDeathTest, RequireSuccessPasses)
{
    LPP_REQUIRE(2 + 2 == 4, "unreachable");
    SUCCEED();
}

} // namespace
