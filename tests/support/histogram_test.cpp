#include <gtest/gtest.h>

#include "support/histogram.hpp"

namespace {

using lpp::LogHistogram;

TEST(LogHistogram, BinIndexBoundaries)
{
    EXPECT_EQ(LogHistogram::binIndex(0), 0u);
    EXPECT_EQ(LogHistogram::binIndex(1), 1u);
    EXPECT_EQ(LogHistogram::binIndex(2), 2u);
    EXPECT_EQ(LogHistogram::binIndex(3), 2u);
    EXPECT_EQ(LogHistogram::binIndex(4), 3u);
    EXPECT_EQ(LogHistogram::binIndex(7), 3u);
    EXPECT_EQ(LogHistogram::binIndex(8), 4u);
    EXPECT_EQ(LogHistogram::binIndex(1ULL << 40), 41u);
}

TEST(LogHistogram, BinBoundsConsistentWithIndex)
{
    for (size_t b = 0; b < 30; ++b) {
        uint64_t lo = LogHistogram::binLow(b);
        uint64_t hi = LogHistogram::binHigh(b);
        EXPECT_LT(lo, hi);
        EXPECT_EQ(LogHistogram::binIndex(lo), b);
        EXPECT_EQ(LogHistogram::binIndex(hi - 1), b);
    }
}

TEST(LogHistogram, CountsAndInfinite)
{
    LogHistogram h;
    h.add(0);
    h.add(5);
    h.add(LogHistogram::infinite);
    h.add(LogHistogram::infinite, 2);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.totalFinite(), 2u);
    EXPECT_EQ(h.infiniteCount(), 3u);
}

TEST(LogHistogram, AddWithZeroCountIsNoop)
{
    LogHistogram h;
    h.add(5, 0);
    EXPECT_EQ(h.total(), 0u);
}

TEST(LogHistogram, MergeSumsBins)
{
    LogHistogram a, b;
    a.add(3);
    a.add(100);
    b.add(3);
    b.add(LogHistogram::infinite);
    a.merge(b);
    EXPECT_EQ(a.total(), 4u);
    EXPECT_EQ(a.binValue(LogHistogram::binIndex(3)), 2u);
    EXPECT_EQ(a.infiniteCount(), 1u);
}

TEST(LogHistogram, MissRateEmptyIsZero)
{
    LogHistogram h;
    EXPECT_DOUBLE_EQ(h.missRate(64), 0.0);
}

TEST(LogHistogram, MissRateMonotonicInCapacity)
{
    LogHistogram h;
    for (uint64_t d = 0; d < 2000; d += 7)
        h.add(d);
    h.add(LogHistogram::infinite, 10);
    double prev = 1.1;
    for (uint64_t cap = 1; cap <= 4096; cap *= 2) {
        double mr = h.missRate(cap);
        EXPECT_LE(mr, prev);
        EXPECT_GE(mr, 0.0);
        prev = mr;
    }
}

TEST(LogHistogram, ColdAccessesAlwaysMiss)
{
    LogHistogram h;
    h.add(LogHistogram::infinite, 7);
    EXPECT_DOUBLE_EQ(h.missRate(1ULL << 30), 1.0);
}

TEST(LogHistogram, CountAtLeastExactAtBinBoundary)
{
    LogHistogram h;
    h.add(4, 10);  // bin [4,8)
    h.add(16, 5);  // bin [16,32)
    EXPECT_EQ(h.countAtLeast(4), 15u);
    EXPECT_EQ(h.countAtLeast(8), 5u);
    EXPECT_EQ(h.countAtLeast(16), 5u);
    EXPECT_EQ(h.countAtLeast(32), 0u);
}

TEST(LogHistogram, DistanceZeroForIdentical)
{
    LogHistogram a;
    a.add(5);
    a.add(100);
    EXPECT_DOUBLE_EQ(a.distance(a), 0.0);
}

TEST(LogHistogram, DistanceSymmetricAndBounded)
{
    LogHistogram a, b;
    a.add(1, 10);
    b.add(1000, 10);
    double dab = a.distance(b);
    double dba = b.distance(a);
    EXPECT_DOUBLE_EQ(dab, dba);
    EXPECT_DOUBLE_EQ(dab, 2.0); // disjoint supports
}

TEST(LogHistogram, DistanceInvariantToScale)
{
    LogHistogram a, b;
    a.add(5, 1);
    a.add(50, 3);
    b.add(5, 10);
    b.add(50, 30);
    EXPECT_NEAR(a.distance(b), 0.0, 1e-12);
}

TEST(LogHistogram, DistanceEmptyVsNonEmpty)
{
    LogHistogram a, b;
    b.add(5);
    EXPECT_DOUBLE_EQ(a.distance(b), 2.0);
    EXPECT_DOUBLE_EQ(a.distance(a), 0.0);
}

TEST(LogHistogram, MeanFiniteWithinBinRange)
{
    LogHistogram h;
    h.add(100, 10);
    double m = h.meanFinite();
    EXPECT_GE(m, 64.0);
    EXPECT_LT(m, 128.0);
}

TEST(LogHistogram, ClearResets)
{
    LogHistogram h;
    h.add(5);
    h.add(LogHistogram::infinite);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.binCount(), 0u);
}

class MissRateCapacitySweep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(MissRateCapacitySweep, MissRateMatchesExactFractionAtPowersOfTwo)
{
    // All mass in one bin at a power of two: countAtLeast at bin edges is
    // exact, so the miss rate must be exactly 0 or 1.
    uint64_t v = GetParam();
    LogHistogram h;
    h.add(v, 100);
    EXPECT_DOUBLE_EQ(h.missRate(v == 0 ? 1 : v * 2), 0.0);
    if (v > 0) {
        EXPECT_DOUBLE_EQ(h.missRate(LogHistogram::binLow(
                             LogHistogram::binIndex(v))),
                         1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, MissRateCapacitySweep,
                         ::testing::Values(0, 1, 2, 4, 64, 1024, 1 << 20));

} // namespace
