#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "support/parallel_for.hpp"

namespace {

using lpp::core::ParallelRunner;
using lpp::support::parallelFor;
using lpp::support::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedJob)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.threadCount(), 4u);
        for (int i = 0; i < 100; ++i)
            pool.submit([&counter] { ++counter; });
        // Destructor drains the queue and joins.
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleWorkerStillCompletes)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 10; ++i)
            pool.submit([&counter] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ConfiguredThreadsHonorsEnv)
{
    ASSERT_EQ(setenv("LPP_THREADS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::configuredThreads(), 3u);
    ASSERT_EQ(setenv("LPP_THREADS", "not-a-number", 1), 0);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
    ASSERT_EQ(setenv("LPP_THREADS", "0", 1), 0);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
    ASSERT_EQ(unsetenv("LPP_THREADS"), 0);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
}

TEST(ThreadPool, ConfiguredThreadsEdgeCases)
{
    // Hardware sizing is the fallback for every non-positive spelling.
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    for (const char *bad : {"", "0", "-4", "garbage", "1x"}) {
        ASSERT_EQ(setenv("LPP_THREADS", bad, 1), 0);
        EXPECT_EQ(ThreadPool::configuredThreads(), hw)
            << "LPP_THREADS='" << bad << "'";
    }
    ASSERT_EQ(unsetenv("LPP_THREADS"), 0);
    EXPECT_EQ(ThreadPool::configuredThreads(), hw);

    // Explicit 1 means 1, and absurd values clamp instead of trying
    // to spawn a million threads.
    ASSERT_EQ(setenv("LPP_THREADS", "1", 1), 0);
    EXPECT_EQ(ThreadPool::configuredThreads(), 1u);
    ASSERT_EQ(setenv("LPP_THREADS", "1000000", 1), 0);
    EXPECT_EQ(ThreadPool::configuredThreads(), 256u);
    ASSERT_EQ(setenv("LPP_THREADS", "18446744073709551617", 1), 0);
    unsigned huge = ThreadPool::configuredThreads();
    EXPECT_GE(huge, 1u);
    EXPECT_LE(huge, 256u);
    ASSERT_EQ(unsetenv("LPP_THREADS"), 0);
}

TEST(ThreadPool, SubmitBatchRunsEverything)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(3);
        std::vector<std::function<void()>> jobs;
        for (int i = 0; i < 64; ++i)
            jobs.emplace_back([&counter] { ++counter; });
        pool.submitBatch(std::move(jobs));
        pool.submitBatch({}); // empty batch is a no-op
    }
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, WorkerStatsCountTasks)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 40; ++i)
        jobs.emplace_back([&counter] { ++counter; });
    pool.submitBatch(std::move(jobs));
    while (counter.load() < 40)
        std::this_thread::yield();

    auto stats = pool.workerStats();
    ASSERT_EQ(stats.size(), 2u);
    uint64_t tasks = 0;
    for (const auto &w : stats)
        tasks += w.tasks;
    EXPECT_EQ(tasks, 40u);

    pool.resetWorkerStats();
    for (const auto &w : pool.workerStats()) {
        EXPECT_EQ(w.tasks, 0u);
        EXPECT_EQ(w.busyNs, 0u);
    }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(pool, hits.size(), [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, ZeroAndOneIterations)
{
    ThreadPool pool(2);
    int calls = 0;
    parallelFor(pool, 0, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(pool, 1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SafeFromInsidePoolWorker)
{
    // A nested parallelFor issued from a pool worker must not deadlock
    // even when every worker is occupied: the caller claims iterations
    // itself.
    ThreadPool pool(2);
    std::atomic<int> total{0};
    parallelFor(pool, 4, [&](size_t) {
        parallelFor(pool, 8, [&](size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 32);
}

TEST(ParallelFor, PropagatesSingleException)
{
    ThreadPool pool(4);
    try {
        parallelFor(pool, 100, [](size_t i) {
            if (i == 7)
                throw std::runtime_error("fail@" + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "fail@7");
    }
}

TEST(ParallelFor, ReportsLowestOfThrownExceptions)
{
    ThreadPool pool(4);
    try {
        parallelFor(pool, 100, [](size_t i) {
            if (i == 7 || i == 63)
                throw std::runtime_error("fail@" + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        // The reported error is the lowest-indexed exception actually
        // thrown; which of the two throws first can race, but nothing
        // else may surface.
        std::string what = e.what();
        EXPECT_TRUE(what == "fail@7" || what == "fail@63") << what;
    }
}

TEST(ParallelRunner, ResultsComeBackInSubmissionOrder)
{
    ThreadPool pool(4);
    ParallelRunner runner(pool);
    auto results = runner.mapIndexed(
        257, [](size_t i) { return i * i; });
    ASSERT_EQ(results.size(), 257u);
    for (size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(ParallelRunner, MatchesSerialReduction)
{
    ThreadPool pool(8);
    ParallelRunner runner(pool);
    auto results = runner.mapIndexed(1000, [](size_t i) {
        // A little work per job so jobs overlap in flight.
        uint64_t h = i + 1;
        for (int r = 0; r < 1000; ++r)
            h = h * 6364136223846793005ULL + 1442695040888963407ULL;
        return h;
    });
    uint64_t serial = 0;
    for (size_t i = 0; i < 1000; ++i) {
        uint64_t h = i + 1;
        for (int r = 0; r < 1000; ++r)
            h = h * 6364136223846793005ULL + 1442695040888963407ULL;
        serial += h;
    }
    uint64_t parallel =
        std::accumulate(results.begin(), results.end(), uint64_t{0});
    EXPECT_EQ(parallel, serial);
}

TEST(ParallelRunner, PropagatesExceptions)
{
    ThreadPool pool(2);
    ParallelRunner runner(pool);
    EXPECT_THROW(runner.mapIndexed(8,
                                   [](size_t i) -> int {
                                       if (i == 5)
                                           throw std::runtime_error("job");
                                       return 0;
                                   }),
                 std::runtime_error);
}

TEST(ParallelRunner, SharedPoolWorks)
{
    ParallelRunner runner; // process-wide pool
    EXPECT_GE(runner.threadCount(), 1u);
    auto results =
        runner.mapIndexed(16, [](size_t i) { return i + 1; });
    for (size_t i = 0; i < 16; ++i)
        EXPECT_EQ(results[i], i + 1);
}

} // namespace
