#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/parallel.hpp"

namespace {

using lpp::core::ParallelRunner;
using lpp::support::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedJob)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.threadCount(), 4u);
        for (int i = 0; i < 100; ++i)
            pool.submit([&counter] { ++counter; });
        // Destructor drains the queue and joins.
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleWorkerStillCompletes)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 10; ++i)
            pool.submit([&counter] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ConfiguredThreadsHonorsEnv)
{
    ASSERT_EQ(setenv("LPP_THREADS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::configuredThreads(), 3u);
    ASSERT_EQ(setenv("LPP_THREADS", "not-a-number", 1), 0);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
    ASSERT_EQ(setenv("LPP_THREADS", "0", 1), 0);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
    ASSERT_EQ(unsetenv("LPP_THREADS"), 0);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
}

TEST(ParallelRunner, ResultsComeBackInSubmissionOrder)
{
    ThreadPool pool(4);
    ParallelRunner runner(pool);
    auto results = runner.mapIndexed(
        257, [](size_t i) { return i * i; });
    ASSERT_EQ(results.size(), 257u);
    for (size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(ParallelRunner, MatchesSerialReduction)
{
    ThreadPool pool(8);
    ParallelRunner runner(pool);
    auto results = runner.mapIndexed(1000, [](size_t i) {
        // A little work per job so jobs overlap in flight.
        uint64_t h = i + 1;
        for (int r = 0; r < 1000; ++r)
            h = h * 6364136223846793005ULL + 1442695040888963407ULL;
        return h;
    });
    uint64_t serial = 0;
    for (size_t i = 0; i < 1000; ++i) {
        uint64_t h = i + 1;
        for (int r = 0; r < 1000; ++r)
            h = h * 6364136223846793005ULL + 1442695040888963407ULL;
        serial += h;
    }
    uint64_t parallel =
        std::accumulate(results.begin(), results.end(), uint64_t{0});
    EXPECT_EQ(parallel, serial);
}

TEST(ParallelRunner, PropagatesExceptions)
{
    ThreadPool pool(2);
    ParallelRunner runner(pool);
    EXPECT_THROW(runner.mapIndexed(8,
                                   [](size_t i) -> int {
                                       if (i == 5)
                                           throw std::runtime_error("job");
                                       return 0;
                                   }),
                 std::runtime_error);
}

TEST(ParallelRunner, SharedPoolWorks)
{
    ParallelRunner runner; // process-wide pool
    EXPECT_GE(runner.threadCount(), 1u);
    auto results =
        runner.mapIndexed(16, [](size_t i) { return i + 1; });
    for (size_t i = 0; i < 16; ++i)
        EXPECT_EQ(results[i], i + 1);
}

} // namespace
