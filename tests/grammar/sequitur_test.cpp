#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "grammar/sequitur.hpp"
#include "support/random.hpp"

namespace {

using namespace lpp::grammar;

std::vector<uint32_t>
roundTrip(const std::vector<uint32_t> &input)
{
    Sequitur s;
    s.append(input);
    return s.extract().expand();
}

TEST(Sequitur, EmptyInput)
{
    Sequitur s;
    Grammar g = s.extract();
    ASSERT_EQ(g.rules.size(), 1u);
    EXPECT_TRUE(g.rules[0].empty());
    EXPECT_TRUE(g.expand().empty());
}

TEST(Sequitur, SingleSymbol)
{
    std::vector<uint32_t> in = {7};
    EXPECT_EQ(roundTrip(in), in);
}

TEST(Sequitur, NoRepetitionNoRules)
{
    Sequitur s;
    std::vector<uint32_t> in = {1, 2, 3, 4, 5};
    s.append(in);
    EXPECT_EQ(s.ruleCount(), 1u);
    EXPECT_EQ(s.extract().expand(), in);
}

TEST(Sequitur, ClassicAbcdbc)
{
    // "abcdbc" -> S: a R d R ; R: b c
    Sequitur s;
    std::vector<uint32_t> in = {'a', 'b', 'c', 'd', 'b', 'c'};
    s.append(in);
    Grammar g = s.extract();
    EXPECT_EQ(g.rules.size(), 2u);
    EXPECT_EQ(g.expand(), in);
    EXPECT_EQ(g.rules[0].size(), 4u);
    EXPECT_EQ(g.rules[1].size(), 2u);
}

TEST(Sequitur, RuleReuseAbcdbcabcdbc)
{
    // Doubling the string reuses rules hierarchically.
    std::vector<uint32_t> once = {'a', 'b', 'c', 'd', 'b', 'c'};
    std::vector<uint32_t> twice = once;
    twice.insert(twice.end(), once.begin(), once.end());
    Sequitur s;
    s.append(twice);
    Grammar g = s.extract();
    EXPECT_EQ(g.expand(), twice);
    // S must be compressed to two references of one rule.
    EXPECT_EQ(g.rules[0].size(), 2u);
}

TEST(Sequitur, OverlappingPairsAaa)
{
    std::vector<uint32_t> in = {9, 9, 9};
    EXPECT_EQ(roundTrip(in), in);
}

TEST(Sequitur, LongRunOfOneSymbol)
{
    std::vector<uint32_t> in(64, 5);
    Sequitur s;
    s.append(in);
    Grammar g = s.extract();
    EXPECT_EQ(g.expand(), in);
    // Hierarchical doubling keeps the grammar logarithmic.
    EXPECT_LT(g.totalSymbols(), 24u);
}

TEST(Sequitur, PeriodicPhaseSequenceCompressesWell)
{
    // The Tomcatv shape: five leaf phases repeated many times.
    std::vector<uint32_t> in;
    for (int step = 0; step < 50; ++step)
        for (uint32_t p = 0; p < 5; ++p)
            in.push_back(p);
    Sequitur s;
    s.append(in);
    Grammar g = s.extract();
    EXPECT_EQ(g.expand(), in);
    EXPECT_LT(g.totalSymbols(), in.size() / 4);
}

TEST(Sequitur, DigramUniquenessInvariant)
{
    // No digram may appear twice in the final grammar (count across all
    // right-hand sides).
    lpp::Rng rng(77);
    std::vector<uint32_t> in;
    for (int i = 0; i < 500; ++i)
        in.push_back(static_cast<uint32_t>(rng.below(4)));
    Sequitur s;
    s.append(in);
    Grammar g = s.extract();
    EXPECT_EQ(g.expand(), in);

    std::set<std::pair<Grammar::Sym, Grammar::Sym>> seen;
    for (const auto &rule : g.rules) {
        for (size_t i = 1; i < rule.size(); ++i) {
            auto digram = std::make_pair(rule[i - 1], rule[i]);
            EXPECT_TRUE(seen.insert(digram).second)
                << "digram (" << digram.first << "," << digram.second
                << ") appears twice";
        }
    }
}

TEST(Sequitur, RuleUtilityInvariant)
{
    // Every rule except the start rule must be referenced >= 2 times.
    lpp::Rng rng(78);
    std::vector<uint32_t> in;
    for (int i = 0; i < 800; ++i)
        in.push_back(static_cast<uint32_t>(rng.below(3)));
    Sequitur s;
    s.append(in);
    Grammar g = s.extract();
    EXPECT_EQ(g.expand(), in);

    std::vector<int> refs(g.rules.size(), 0);
    for (const auto &rule : g.rules)
        for (Grammar::Sym sym : rule)
            if (Grammar::isRule(sym))
                ++refs[Grammar::ruleIndex(sym)];
    for (size_t r = 1; r < g.rules.size(); ++r)
        EXPECT_GE(refs[r], 2) << "rule " << r << " underused";
}

TEST(Sequitur, RandomRoundTripSweep)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        lpp::Rng rng(seed);
        std::vector<uint32_t> in;
        size_t len = 100 + rng.below(900);
        uint64_t alphabet = 2 + rng.below(10);
        for (size_t i = 0; i < len; ++i)
            in.push_back(static_cast<uint32_t>(rng.below(alphabet)));
        EXPECT_EQ(roundTrip(in), in) << "seed " << seed;
    }
}

TEST(Sequitur, CompressionLinearInDistinctContent)
{
    // Grammar size for a highly repetitive string grows ~log, far below
    // input size.
    std::vector<uint32_t> in;
    for (int i = 0; i < 1024; ++i) {
        in.push_back(1);
        in.push_back(2);
    }
    Sequitur s;
    s.append(in);
    EXPECT_EQ(s.inputLength(), in.size());
    Grammar g = s.extract();
    EXPECT_EQ(g.expand(), in);
    EXPECT_LT(g.totalSymbols(), 64u);
}

TEST(Sequitur, ExpandedLengthMatchesWithoutMaterializing)
{
    std::vector<uint32_t> in;
    for (int i = 0; i < 300; ++i)
        in.push_back(static_cast<uint32_t>(i % 7));
    Sequitur s;
    s.append(in);
    Grammar g = s.extract();
    EXPECT_EQ(g.expandedLength(), in.size());
}

TEST(SequiturDeathTest, RejectsHugeTerminals)
{
    // The terminal-range check is a per-symbol LPP_DCHECK: active in
    // debug builds and whenever LPP_DCHECKS forces it (the sanitizer
    // presets).
#if !defined(NDEBUG) || defined(LPP_FORCE_DCHECKS)
    Sequitur s;
    EXPECT_DEATH(s.append(0x80000001u), "too large");
#else
    GTEST_SKIP() << "terminal-range check is debug-only (LPP_DCHECK)";
#endif
}

} // namespace
