#include <gtest/gtest.h>

#include "grammar/automaton.hpp"
#include "grammar/hierarchy.hpp"

namespace {

using namespace lpp::grammar;

RegexPtr
tomcatvRegex(int steps = 25)
{
    auto step = Regex::concat({Regex::symbol(0), Regex::symbol(1),
                               Regex::symbol(2), Regex::symbol(3),
                               Regex::symbol(4)});
    return Regex::repeat(step, static_cast<uint64_t>(steps));
}

TEST(PhaseAutomaton, NullRootAcceptsNothing)
{
    PhaseAutomaton a(nullptr);
    EXPECT_TRUE(a.possibleNext().empty());
    EXPECT_FALSE(a.feed(1));
    EXPECT_TRUE(a.lost());
}

TEST(PhaseAutomaton, TracksLinearSequence)
{
    auto r = Regex::concat({Regex::symbol(1), Regex::symbol(2),
                            Regex::symbol(3)});
    PhaseAutomaton a(r);
    EXPECT_EQ(a.possibleNext(), (std::vector<uint32_t>{1}));
    EXPECT_TRUE(a.feed(1));
    EXPECT_EQ(a.possibleNext(), (std::vector<uint32_t>{2}));
    EXPECT_TRUE(a.feed(2));
    EXPECT_TRUE(a.feed(3));
    EXPECT_TRUE(a.possibleNext().empty());
}

TEST(PhaseAutomaton, LoopAllowsMoreIterationsThanTraining)
{
    // Trained with 3 iterations; prediction run does 10: the loop must
    // keep accepting.
    auto r = Regex::repeat(Regex::concat({Regex::symbol(0),
                                          Regex::symbol(1)}),
                           3);
    PhaseAutomaton a(r);
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(a.feed(0)) << "iteration " << i;
        EXPECT_TRUE(a.feed(1)) << "iteration " << i;
    }
    EXPECT_EQ(a.resyncCount(), 0u);
}

TEST(PhaseAutomaton, DeterministicNextInsideLoopBody)
{
    auto r = tomcatvRegex();
    PhaseAutomaton a(r);
    EXPECT_TRUE(a.feed(0));
    uint32_t next = 99;
    ASSERT_TRUE(a.deterministicNext(&next));
    EXPECT_EQ(next, 1u);
    EXPECT_TRUE(a.feed(1));
    ASSERT_TRUE(a.deterministicNext(&next));
    EXPECT_EQ(next, 2u);
}

TEST(PhaseAutomaton, LoopBoundaryPredictsBodyStart)
{
    // After the last leaf of an iteration the only possible successor
    // inside the hierarchy is the body start (loop) — plus whatever
    // follows the loop, which here is nothing.
    auto r = tomcatvRegex();
    PhaseAutomaton a(r);
    for (uint32_t p = 0; p < 5; ++p)
        EXPECT_TRUE(a.feed(p));
    EXPECT_EQ(a.possibleNext(), (std::vector<uint32_t>{0}));
}

TEST(PhaseAutomaton, AmbiguityAtLoopExit)
{
    // (0 1)^n 2: after a 1, both another 0 (loop) and 2 (exit) are
    // possible.
    auto loop = Regex::repeat(Regex::concat({Regex::symbol(0),
                                             Regex::symbol(1)}),
                              4);
    auto r = Regex::concat({loop, Regex::symbol(2)});
    PhaseAutomaton a(r);
    EXPECT_TRUE(a.feed(0));
    EXPECT_TRUE(a.feed(1));
    EXPECT_EQ(a.possibleNext(), (std::vector<uint32_t>{0, 2}));
    EXPECT_FALSE(a.deterministicNext(nullptr));
    EXPECT_TRUE(a.feed(2));
    EXPECT_TRUE(a.possibleNext().empty());
}

TEST(PhaseAutomaton, ResyncAfterUnexpectedSymbol)
{
    auto r = tomcatvRegex();
    PhaseAutomaton a(r);
    EXPECT_TRUE(a.feed(0));
    EXPECT_FALSE(a.feed(3)); // impossible: 1 expected
    EXPECT_TRUE(a.lost());
    EXPECT_EQ(a.resyncCount(), 1u);
    // Resync lands back at the start; feeding the body start works.
    EXPECT_TRUE(a.feed(0));
    EXPECT_FALSE(a.lost());
}

TEST(PhaseAutomaton, ResyncMatchesStartSymbolImmediately)
{
    auto r = tomcatvRegex();
    PhaseAutomaton a(r);
    EXPECT_TRUE(a.feed(0));
    EXPECT_TRUE(a.feed(1));
    // Unexpected 0 (e.g. a skipped substep): resync consumes it as the
    // start of a fresh iteration.
    EXPECT_FALSE(a.feed(0));
    uint32_t next = 99;
    ASSERT_TRUE(a.deterministicNext(&next));
    EXPECT_EQ(next, 1u);
}

TEST(PhaseAutomaton, ResetReturnsToStart)
{
    auto r = tomcatvRegex();
    PhaseAutomaton a(r);
    EXPECT_TRUE(a.feed(0));
    EXPECT_TRUE(a.feed(1));
    a.reset();
    EXPECT_FALSE(a.lost());
    EXPECT_EQ(a.possibleNext(), (std::vector<uint32_t>{0}));
}

TEST(PhaseAutomaton, WorksOnRealHierarchy)
{
    // End-to-end: sequence -> Sequitur -> regex -> automaton accepts a
    // longer run of the same pattern.
    std::vector<uint32_t> seq;
    for (int s = 0; s < 12; ++s)
        for (uint32_t p = 0; p < 5; ++p)
            seq.push_back(p);
    auto h = PhaseHierarchy::fromSequence(seq);
    PhaseAutomaton a(h.root());
    for (int s = 0; s < 100; ++s)
        for (uint32_t p = 0; p < 5; ++p)
            ASSERT_TRUE(a.feed(p)) << "step " << s << " phase " << p;
    EXPECT_EQ(a.resyncCount(), 0u);
    EXPECT_EQ(a.feedCount(), 500u);
}

TEST(PhaseAutomaton, StateCountLinearInRegexSize)
{
    auto r = tomcatvRegex();
    PhaseAutomaton a(r);
    EXPECT_LT(a.stateCount(), 24u);
}

} // namespace
