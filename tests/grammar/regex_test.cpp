#include <gtest/gtest.h>

#include "grammar/regex.hpp"

namespace {

using namespace lpp::grammar;

TEST(Regex, SymbolBasics)
{
    auto r = Regex::symbol(3);
    EXPECT_EQ(r->kind(), Regex::Kind::Symbol);
    EXPECT_EQ(r->symbolId(), 3u);
    EXPECT_EQ(r->expandedLength(), 1u);
    EXPECT_EQ(r->toString(), "3");
}

TEST(Regex, RepeatOfOneCollapses)
{
    auto r = Regex::repeat(Regex::symbol(1), 1);
    EXPECT_EQ(r->kind(), Regex::Kind::Symbol);
}

TEST(Regex, NestedRepeatsMultiply)
{
    auto r = Regex::repeat(Regex::repeat(Regex::symbol(1), 3), 4);
    ASSERT_EQ(r->kind(), Regex::Kind::Repeat);
    EXPECT_EQ(r->count(), 12u);
    EXPECT_EQ(r->body()->kind(), Regex::Kind::Symbol);
}

TEST(Regex, ConcatMergesAdjacentSymbols)
{
    auto r = Regex::concat({Regex::symbol(1), Regex::symbol(1),
                            Regex::symbol(1)});
    ASSERT_EQ(r->kind(), Regex::Kind::Repeat);
    EXPECT_EQ(r->count(), 3u);
    EXPECT_EQ(r->toString(), "1^3");
}

TEST(Regex, ConcatMergesRepeatWithSymbol)
{
    auto r = Regex::concat({Regex::repeat(Regex::symbol(2), 4),
                            Regex::symbol(2)});
    ASSERT_EQ(r->kind(), Regex::Kind::Repeat);
    EXPECT_EQ(r->count(), 5u);
}

TEST(Regex, ConcatMergesTwoRepeats)
{
    auto ab = Regex::concat({Regex::symbol(1), Regex::symbol(2)});
    auto r = Regex::concat(
        {Regex::repeat(ab, 3), Regex::repeat(ab, 2)});
    ASSERT_EQ(r->kind(), Regex::Kind::Repeat);
    EXPECT_EQ(r->count(), 5u);
    EXPECT_EQ(r->expandedLength(), 10u);
}

TEST(Regex, ConcatFlattensNestedConcats)
{
    auto inner = Regex::concat({Regex::symbol(1), Regex::symbol(2)});
    auto r = Regex::concat({inner, Regex::symbol(3)});
    ASSERT_EQ(r->kind(), Regex::Kind::Concat);
    EXPECT_EQ(r->parts().size(), 3u);
}

TEST(Regex, ConcatDetectsWholePeriodicity)
{
    // a b a b does not merge pairwise but is (a b)^2.
    auto r = Regex::concat({Regex::symbol(1), Regex::symbol(2),
                            Regex::symbol(1), Regex::symbol(2)});
    ASSERT_EQ(r->kind(), Regex::Kind::Repeat);
    EXPECT_EQ(r->count(), 2u);
    EXPECT_EQ(r->toString(), "(1 2)^2");
}

TEST(Regex, SingleElementConcatCollapses)
{
    auto r = Regex::concat({Regex::symbol(9)});
    EXPECT_EQ(r->kind(), Regex::Kind::Symbol);
}

TEST(Regex, EmptyConcatIsNull)
{
    EXPECT_EQ(Regex::concat({}), nullptr);
}

TEST(Regex, EqualsStructural)
{
    auto a = Regex::concat({Regex::symbol(1), Regex::symbol(2)});
    auto b = Regex::concat({Regex::symbol(1), Regex::symbol(2)});
    auto c = Regex::concat({Regex::symbol(2), Regex::symbol(1)});
    EXPECT_TRUE(a->equals(*b));
    EXPECT_FALSE(a->equals(*c));
    EXPECT_FALSE(a->equals(*Regex::symbol(1)));
}

TEST(Regex, ExpandRoundTrip)
{
    auto step = Regex::concat({Regex::symbol(0), Regex::symbol(1),
                               Regex::symbol(2)});
    auto run = Regex::repeat(step, 3);
    std::vector<uint32_t> want = {0, 1, 2, 0, 1, 2, 0, 1, 2};
    EXPECT_EQ(run->expand(), want);
    EXPECT_EQ(run->expandedLength(), 9u);
}

TEST(Regex, ToStringComposite)
{
    auto step = Regex::concat({Regex::symbol(0), Regex::symbol(1)});
    auto run = Regex::repeat(step, 25);
    EXPECT_EQ(run->toString(), "(0 1)^25");
}

TEST(Regex, NodeCount)
{
    auto step = Regex::concat({Regex::symbol(0), Regex::symbol(1)});
    auto run = Regex::repeat(step, 2);
    // Repeat + Concat + 2 symbols
    EXPECT_EQ(run->nodeCountRecursive(), 4u);
}

TEST(RegexDeathTest, RepeatCountZeroPanics)
{
    EXPECT_DEATH(Regex::repeat(Regex::symbol(1), 0), "count");
}


TEST(RegexParse, SymbolAndRepeat)
{
    auto r = Regex::parse("7");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->kind(), Regex::Kind::Symbol);
    EXPECT_EQ(r->symbolId(), 7u);

    auto rep = Regex::parse("3^25");
    ASSERT_NE(rep, nullptr);
    ASSERT_EQ(rep->kind(), Regex::Kind::Repeat);
    EXPECT_EQ(rep->count(), 25u);
}

TEST(RegexParse, ParenthesizedComposite)
{
    auto r = Regex::parse("(0 1 2 3 4)^30");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->toString(), "(0 1 2 3 4)^30");
    EXPECT_EQ(r->expandedLength(), 150u);
}

TEST(RegexParse, NestedStructure)
{
    auto r = Regex::parse("9 (0 (1 2)^3)^8 5");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->expandedLength(), 1 + 8 * 7 + 1);
}

TEST(RegexParse, RoundTripsToString)
{
    const char *cases[] = {"0", "0 1 2", "(0 1)^4", "2^7",
                           "(0 (1 2)^3 4)^5 6"};
    for (const char *text : cases) {
        auto r = Regex::parse(text);
        ASSERT_NE(r, nullptr) << text;
        auto again = Regex::parse(r->toString());
        ASSERT_NE(again, nullptr) << text;
        EXPECT_EQ(again->expand(), r->expand()) << text;
    }
}

TEST(RegexParse, MalformedInputsRejected)
{
    EXPECT_EQ(Regex::parse(""), nullptr);
    EXPECT_EQ(Regex::parse("("), nullptr);
    EXPECT_EQ(Regex::parse("(1"), nullptr);
    EXPECT_EQ(Regex::parse("1)"), nullptr);
    EXPECT_EQ(Regex::parse("1^"), nullptr);
    EXPECT_EQ(Regex::parse("1^0"), nullptr);
    EXPECT_EQ(Regex::parse("a b"), nullptr);
    EXPECT_EQ(Regex::parse("1 ^2"), nullptr);
}

} // namespace
