#include <gtest/gtest.h>

#include <vector>

#include "grammar/hierarchy.hpp"

namespace {

using namespace lpp::grammar;

std::vector<uint32_t>
timeSteps(const std::vector<uint32_t> &body, int steps)
{
    std::vector<uint32_t> seq;
    for (int s = 0; s < steps; ++s)
        seq.insert(seq.end(), body.begin(), body.end());
    return seq;
}

TEST(PhaseHierarchy, EmptySequence)
{
    auto h = PhaseHierarchy::fromSequence({});
    EXPECT_EQ(h.root(), nullptr);
    EXPECT_EQ(h.leafCount(), 0u);
    EXPECT_TRUE(h.composites().empty());
    EXPECT_EQ(h.largestComposite(), nullptr);
}

TEST(PhaseHierarchy, SingleLeaf)
{
    auto h = PhaseHierarchy::fromSequence({4});
    ASSERT_NE(h.root(), nullptr);
    EXPECT_EQ(h.root()->kind(), Regex::Kind::Symbol);
    EXPECT_EQ(h.leafCount(), 1u);
}

TEST(PhaseHierarchy, TomcatvShape)
{
    // 5 substeps repeated 25 times: the hierarchy must expose the time
    // step as one composite phase of 5 leaves and 25 iterations.
    auto h = PhaseHierarchy::fromSequence(timeSteps({0, 1, 2, 3, 4}, 25));
    ASSERT_NE(h.root(), nullptr);
    EXPECT_EQ(h.root()->expand(),
              timeSteps({0, 1, 2, 3, 4}, 25));

    const CompositePhase *big = h.largestComposite();
    ASSERT_NE(big, nullptr);
    EXPECT_EQ(big->leavesPerIteration, 5u);
    EXPECT_EQ(big->iterations, 25u);
}

TEST(PhaseHierarchy, RegexRoundTripsGrammar)
{
    std::vector<uint32_t> seq = timeSteps({1, 2, 1, 3}, 10);
    auto h = PhaseHierarchy::fromSequence(seq);
    EXPECT_EQ(h.root()->expand(), seq);
    EXPECT_EQ(h.grammar().expand(), seq);
}

TEST(PhaseHierarchy, NestedComposites)
{
    // ((0 1)^3 2)^8: inner and outer repeats both discovered.
    std::vector<uint32_t> inner = timeSteps({0, 1}, 3);
    inner.push_back(2);
    auto seq = timeSteps(inner, 8);
    auto h = PhaseHierarchy::fromSequence(seq);
    EXPECT_EQ(h.root()->expand(), seq);
    ASSERT_GE(h.composites().size(), 2u);

    const CompositePhase *big = h.largestComposite();
    ASSERT_NE(big, nullptr);
    EXPECT_EQ(big->leavesPerIteration, 7u);
    EXPECT_EQ(big->iterations, 8u);
}

TEST(PhaseHierarchy, NonRepeatingSequenceHasNoComposite)
{
    auto h = PhaseHierarchy::fromSequence({0, 1, 2, 3, 4, 5});
    EXPECT_EQ(h.root()->expand(),
              (std::vector<uint32_t>{0, 1, 2, 3, 4, 5}));
    EXPECT_EQ(h.largestComposite(), nullptr);
}

TEST(PhaseHierarchy, PrologueThenSteadyState)
{
    // A prologue phase then a steady loop, like MolDyn's setup followed
    // by time steps.
    std::vector<uint32_t> seq = {9, 9, 8};
    auto steps = timeSteps({0, 1}, 30);
    seq.insert(seq.end(), steps.begin(), steps.end());
    auto h = PhaseHierarchy::fromSequence(seq);
    EXPECT_EQ(h.root()->expand(), seq);
    const CompositePhase *big = h.largestComposite();
    ASSERT_NE(big, nullptr);
    EXPECT_EQ(big->leavesPerIteration, 2u);
    EXPECT_EQ(big->iterations, 30u);
}

TEST(PhaseHierarchy, CompositeDepthsAreRecorded)
{
    std::vector<uint32_t> inner = timeSteps({0, 1}, 4);
    inner.push_back(2);
    auto seq = timeSteps(inner, 6);
    auto h = PhaseHierarchy::fromSequence(seq);
    bool saw_outer = false, saw_inner = false;
    for (const auto &c : h.composites()) {
        if (c.depth == 0)
            saw_outer = true;
        if (c.depth > 0)
            saw_inner = true;
    }
    EXPECT_TRUE(saw_outer);
    EXPECT_TRUE(saw_inner);
}

TEST(PhaseHierarchy, RegexFromGrammarEmptyGrammar)
{
    Grammar g;
    EXPECT_EQ(PhaseHierarchy::regexFromGrammar(g), nullptr);
    g.rules.emplace_back();
    EXPECT_EQ(PhaseHierarchy::regexFromGrammar(g), nullptr);
}

TEST(PhaseHierarchy, LongRunCompressesToSingleRepeat)
{
    auto h = PhaseHierarchy::fromSequence(std::vector<uint32_t>(500, 3));
    ASSERT_NE(h.root(), nullptr);
    ASSERT_EQ(h.root()->kind(), Regex::Kind::Repeat);
    EXPECT_EQ(h.root()->count(), 500u);
    EXPECT_EQ(h.root()->body()->kind(), Regex::Kind::Symbol);
}

} // namespace
