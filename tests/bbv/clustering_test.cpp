#include <gtest/gtest.h>

#include "bbv/clustering.hpp"
#include "support/random.hpp"

namespace {

using namespace lpp::bbv;

std::vector<double>
point(double x, double y)
{
    return {x, y};
}

TEST(BbvClustering, FirstVectorFoundsCluster)
{
    BbvClustering c(0.1);
    EXPECT_EQ(c.assign(point(0.5, 0.5)), 0u);
    EXPECT_EQ(c.clusterCount(), 1u);
    EXPECT_EQ(c.memberCount(0), 1u);
}

TEST(BbvClustering, NearbyVectorsJoin)
{
    BbvClustering c(0.2);
    c.assign(point(0.5, 0.5));
    EXPECT_EQ(c.assign(point(0.55, 0.45)), 0u);
    EXPECT_EQ(c.memberCount(0), 2u);
    EXPECT_EQ(c.clusterCount(), 1u);
}

TEST(BbvClustering, DistantVectorsFoundNewClusters)
{
    BbvClustering c(0.2);
    c.assign(point(1.0, 0.0));
    EXPECT_EQ(c.assign(point(0.0, 1.0)), 1u);
    EXPECT_EQ(c.clusterCount(), 2u);
}

TEST(BbvClustering, CentroidTracksRunningMean)
{
    BbvClustering c(1.0);
    c.assign(point(0.0, 0.0));
    c.assign(point(0.2, 0.0));
    EXPECT_NEAR(c.centroid(0)[0], 0.1, 1e-12);
    c.assign(point(0.4, 0.0));
    EXPECT_NEAR(c.centroid(0)[0], 0.2, 1e-12);
}

TEST(BbvClustering, AssignAllMatchesSequentialAssign)
{
    std::vector<std::vector<double>> pts = {
        point(0, 0), point(0.01, 0), point(1, 1), point(0.99, 1.0)};
    BbvClustering a(0.1), b(0.1);
    auto ids = a.assignAll(pts);
    std::vector<uint32_t> ids2;
    for (const auto &p : pts)
        ids2.push_back(b.assign(p));
    EXPECT_EQ(ids, ids2);
    EXPECT_EQ(ids[0], ids[1]);
    EXPECT_EQ(ids[2], ids[3]);
    EXPECT_NE(ids[0], ids[2]);
}

TEST(BbvClustering, RecurringPatternMapsToStableClusters)
{
    // A B A B ... with small noise: exactly two clusters.
    lpp::Rng rng(71);
    BbvClustering c(0.3);
    std::vector<uint32_t> ids;
    for (int i = 0; i < 40; ++i) {
        double noise = rng.uniform() * 0.02;
        ids.push_back(c.assign(i % 2 ? point(0.9 + noise, 0.1)
                                     : point(0.1 + noise, 0.9)));
    }
    EXPECT_EQ(c.clusterCount(), 2u);
    for (size_t i = 2; i < ids.size(); ++i)
        EXPECT_EQ(ids[i], ids[i - 2]);
}

TEST(BbvClusteringDeathTest, RejectsNonPositiveThreshold)
{
    EXPECT_DEATH(BbvClustering(0.0), "positive");
}

} // namespace
