#include <gtest/gtest.h>

#include "bbv/working_set.hpp"
#include "support/random.hpp"

namespace {

using namespace lpp::bbv;

TEST(WorkingSetSignature, EmptySignaturesIdentical)
{
    WorkingSetSignature a(256), b(256);
    EXPECT_DOUBLE_EQ(a.distance(b), 0.0);
    EXPECT_DOUBLE_EQ(a.fillRatio(), 0.0);
}

TEST(WorkingSetSignature, SameContentSameSignature)
{
    WorkingSetSignature a(256), b(256);
    for (uint64_t id = 0; id < 40; ++id) {
        a.add(id);
        b.add(id);
    }
    EXPECT_DOUBLE_EQ(a.distance(b), 0.0);
    EXPECT_GT(a.fillRatio(), 0.1);
}

TEST(WorkingSetSignature, DisjointContentFarApart)
{
    WorkingSetSignature a(1024), b(1024);
    for (uint64_t id = 0; id < 30; ++id) {
        a.add(id);
        b.add(1000 + id);
    }
    EXPECT_GT(a.distance(b), 0.8);
}

TEST(WorkingSetSignature, PartialOverlapIntermediate)
{
    WorkingSetSignature a(1024), b(1024);
    for (uint64_t id = 0; id < 40; ++id)
        a.add(id);
    for (uint64_t id = 20; id < 60; ++id)
        b.add(id);
    double d = a.distance(b);
    EXPECT_GT(d, 0.2);
    EXPECT_LT(d, 0.9);
}

TEST(WorkingSetSignature, ClearEmpties)
{
    WorkingSetSignature a(256);
    a.add(5);
    a.clear();
    EXPECT_DOUBLE_EQ(a.fillRatio(), 0.0);
}

TEST(WorkingSetSignatureDeathTest, WidthMustBeWordMultiple)
{
    EXPECT_DEATH(WorkingSetSignature(100), "multiple of 64");
}

TEST(WorkingSetPhases, AlternatingCodeRegionsFormTwoPhases)
{
    WorkingSetPhases ws(1000, 0.5, 512);
    for (int rep = 0; rep < 6; ++rep) {
        for (int i = 0; i < 100; ++i)
            ws.onBlock(static_cast<uint32_t>(i % 20), 10);
        for (int i = 0; i < 100; ++i)
            ws.onBlock(static_cast<uint32_t>(500 + i % 20), 10);
    }
    ws.onEnd();
    EXPECT_EQ(ws.phaseCount(), 2u);
    ASSERT_EQ(ws.intervalPhases().size(), 12u);
    // Strict alternation after the two exemplars are known.
    for (size_t i = 2; i < ws.intervalPhases().size(); ++i)
        EXPECT_EQ(ws.intervalPhases()[i], ws.intervalPhases()[i - 2]);
    EXPECT_EQ(ws.transitions(), 11u);
}

TEST(WorkingSetPhases, StableCodeIsOnePhase)
{
    WorkingSetPhases ws(1000, 0.5, 512);
    for (int i = 0; i < 5000; ++i)
        ws.onBlock(static_cast<uint32_t>(i % 30), 10);
    ws.onEnd();
    EXPECT_EQ(ws.phaseCount(), 1u);
    EXPECT_EQ(ws.transitions(), 0u);
}

TEST(WorkingSetPhases, PartialTrailingIntervalFlushedOnce)
{
    WorkingSetPhases ws(1000, 0.5, 256);
    ws.onBlock(1, 300);
    ws.onEnd();
    ws.onEnd();
    EXPECT_EQ(ws.intervalPhases().size(), 1u);
}

TEST(WorkingSetPhases, ThresholdControlsSensitivity)
{
    // Two regions sharing half their blocks: a loose threshold merges
    // them into one phase, a tight one separates them.
    auto run = [](double threshold) {
        WorkingSetPhases ws(1000, threshold, 1024);
        for (int rep = 0; rep < 4; ++rep) {
            for (int i = 0; i < 100; ++i)
                ws.onBlock(static_cast<uint32_t>(i % 40), 10);
            for (int i = 0; i < 100; ++i)
                ws.onBlock(static_cast<uint32_t>(20 + i % 40), 10);
        }
        ws.onEnd();
        return ws.phaseCount();
    };
    EXPECT_EQ(run(0.9), 1u);
    EXPECT_GE(run(0.2), 2u);
}

} // namespace

TEST(WorkingSetPhases, BatchedAccessesMatchScalar)
{
    // Data accesses carry no signal for working-set phases; batched
    // delivery must leave the interval classification untouched.
    WorkingSetPhases one(1000, 0.5, 256), batched(1000, 0.5, 256);
    lpp::Rng rng(21);
    std::vector<lpp::trace::Addr> addrs(200);
    for (int round = 0; round < 120; ++round) {
        uint32_t block = round < 60 ? round % 4 : 100 + round % 4;
        one.onBlock(block, 100);
        batched.onBlock(block, 100);
        for (auto &a : addrs)
            a = rng.below(1 << 16) * 8;
        for (auto a : addrs)
            one.onAccess(a);
        batched.onAccessBatch(addrs.data(), addrs.size());
    }
    one.onEnd();
    batched.onEnd();
    EXPECT_EQ(one.intervalPhases(), batched.intervalPhases());
    EXPECT_EQ(one.phaseCount(), batched.phaseCount());
    EXPECT_EQ(one.transitions(), batched.transitions());
}
