#include <gtest/gtest.h>

#include "bbv/markov.hpp"

namespace {

using lpp::bbv::RleMarkovPredictor;

TEST(RleMarkov, LastValueBeforeAnyTableHit)
{
    RleMarkovPredictor p;
    p.observe(5);
    EXPECT_EQ(p.predict(), 5u);
}

TEST(RleMarkov, LearnsAlternation)
{
    // A B A B ... : after training, predictions are perfect.
    RleMarkovPredictor p;
    for (int i = 0; i < 4; ++i) {
        p.observe(0);
        p.observe(1);
    }
    EXPECT_EQ(p.predict(), 0u);
    p.observe(0);
    EXPECT_EQ(p.predict(), 1u);
}

TEST(RleMarkov, RunLengthDisambiguates)
{
    // A A B A A B: after 1 A comes A, after 2 As comes B — plain
    // last-value cannot learn this, RLE Markov can.
    RleMarkovPredictor p;
    for (int i = 0; i < 5; ++i) {
        p.observe(0);
        p.observe(0);
        p.observe(1);
    }
    p.observe(0);
    EXPECT_EQ(p.predict(), 0u); // one A so far: next is A
    p.observe(0);
    EXPECT_EQ(p.predict(), 1u); // two As: next is B
}

TEST(RleMarkov, PredictSequenceAccuracyOnPeriodicInput)
{
    std::vector<uint32_t> seq;
    for (int i = 0; i < 60; ++i)
        seq.push_back(i % 3);
    RleMarkovPredictor p;
    auto pred = p.predictSequence(seq);
    ASSERT_EQ(pred.size(), seq.size());
    double acc = RleMarkovPredictor::accuracy(pred, seq);
    // After a short warm-up the pattern is learned exactly.
    EXPECT_GT(acc, 0.85);
}

TEST(RleMarkov, StableRunsPredictedByFallback)
{
    RleMarkovPredictor p;
    std::vector<uint32_t> seq(50, 7);
    auto pred = p.predictSequence(seq);
    double acc = RleMarkovPredictor::accuracy(pred, seq);
    EXPECT_GT(acc, 0.95);
}

TEST(RleMarkov, RandomInputPoorAccuracy)
{
    // xorshift-ish pseudo-random clusters: accuracy far below 1.
    std::vector<uint32_t> seq;
    uint32_t x = 123;
    for (int i = 0; i < 400; ++i) {
        x = x * 1664525 + 1013904223;
        seq.push_back((x >> 24) % 7);
    }
    RleMarkovPredictor p;
    auto pred = p.predictSequence(seq);
    EXPECT_LT(RleMarkovPredictor::accuracy(pred, seq), 0.5);
}

TEST(RleMarkov, RunLengthCapKeepsTableBounded)
{
    RleMarkovPredictor p(4);
    for (int i = 0; i < 1000; ++i)
        p.observe(1);
    EXPECT_LE(p.tableSize(), 5u);
}

TEST(RleMarkov, AccuracyEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(RleMarkovPredictor::accuracy({}, {}), 0.0);
}

TEST(RleMarkovDeathTest, AccuracySizeMismatch)
{
    EXPECT_DEATH(RleMarkovPredictor::accuracy({1}, {1, 2}), "mismatch");
}

} // namespace
