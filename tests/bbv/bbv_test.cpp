#include <gtest/gtest.h>

#include <cmath>

#include "bbv/bbv.hpp"

namespace {

using namespace lpp::bbv;

TEST(BbvCollector, OneVectorPerInterval)
{
    BbvCollector c(8);
    c.onBlock(1, 10);
    c.finalizeInterval();
    c.onBlock(2, 10);
    c.finalizeInterval();
    EXPECT_EQ(c.vectors().size(), 2u);
    EXPECT_EQ(c.vectors()[0].size(), 8u);
}

TEST(BbvCollector, VectorsAreL1Normalized)
{
    BbvCollector c(16);
    c.onBlock(1, 100);
    c.onBlock(2, 300);
    c.finalizeInterval();
    double sum = 0.0;
    for (double v : c.vectors()[0])
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BbvCollector, SameMixSameVector)
{
    BbvCollector c(32);
    for (int i = 0; i < 50; ++i)
        c.onBlock(7, 12);
    c.onBlock(9, 40);
    c.finalizeInterval();
    for (int i = 0; i < 100; ++i)
        c.onBlock(7, 12); // same proportions, double the length
    c.onBlock(9, 80);
    c.finalizeInterval();
    EXPECT_NEAR(manhattan(c.vectors()[0], c.vectors()[1]), 0.0, 1e-9);
}

TEST(BbvCollector, DifferentMixDifferentVector)
{
    BbvCollector c(32);
    c.onBlock(1, 100);
    c.finalizeInterval();
    c.onBlock(2, 100);
    c.finalizeInterval();
    EXPECT_GT(manhattan(c.vectors()[0], c.vectors()[1]), 0.05);
}

TEST(BbvCollector, ProjectionDeterministicAcrossInstances)
{
    BbvCollector a(32, 99), b(32, 99);
    a.onBlock(5, 10);
    b.onBlock(5, 10);
    a.finalizeInterval();
    b.finalizeInterval();
    EXPECT_EQ(a.vectors()[0], b.vectors()[0]);
}

TEST(BbvCollector, SeedChangesProjection)
{
    BbvCollector a(32, 1), b(32, 2);
    a.onBlock(5, 10);
    b.onBlock(5, 10);
    a.finalizeInterval();
    b.finalizeInterval();
    EXPECT_GT(manhattan(a.vectors()[0], b.vectors()[0]), 1e-6);
}

TEST(BbvCollector, EmptyIntervalYieldsZeroVector)
{
    BbvCollector c(4);
    c.finalizeInterval();
    for (double v : c.vectors()[0])
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(BbvCollector, OnEndFlushesPartialInterval)
{
    BbvCollector c(4);
    c.onBlock(1, 5);
    c.onEnd();
    EXPECT_EQ(c.vectors().size(), 1u);
    c.onEnd();
    EXPECT_EQ(c.vectors().size(), 1u);
}

TEST(Manhattan, BasicProperties)
{
    std::vector<double> a = {0.5, 0.5};
    std::vector<double> b = {1.0, 0.0};
    EXPECT_DOUBLE_EQ(manhattan(a, a), 0.0);
    EXPECT_DOUBLE_EQ(manhattan(a, b), 1.0);
    EXPECT_DOUBLE_EQ(manhattan(b, a), 1.0);
}

TEST(ManhattanDeathTest, DimensionMismatch)
{
    std::vector<double> a = {1.0};
    std::vector<double> b = {1.0, 2.0};
    EXPECT_DEATH(manhattan(a, b), "mismatch");
}

} // namespace
