#include <gtest/gtest.h>

#include <set>

#include "trace/recorder.hpp"
#include "trace/sink.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace lpp::workloads;
using lpp::trace::ClockSink;

TEST(Registry, AllNamesCreate)
{
    auto names = allNames();
    EXPECT_EQ(names.size(), 9u);
    for (const auto &n : names) {
        auto w = create(n);
        ASSERT_NE(w, nullptr) << n;
        EXPECT_EQ(w->name(), n);
        EXPECT_FALSE(w->description().empty());
        EXPECT_FALSE(w->source().empty());
    }
}

TEST(Registry, UnknownNameReturnsNull)
{
    EXPECT_EQ(create("nope"), nullptr);
}

TEST(Registry, PredictableExcludesGccAndVortex)
{
    auto p = predictableNames();
    EXPECT_EQ(p.size(), 7u);
    std::set<std::string> set(p.begin(), p.end());
    EXPECT_FALSE(set.count("gcc"));
    EXPECT_FALSE(set.count("vortex"));
    EXPECT_TRUE(create("gcc")->predictable() == false);
    EXPECT_TRUE(create("vortex")->predictable() == false);
    EXPECT_TRUE(create("tomcatv")->predictable());
}

class PerWorkload : public ::testing::TestWithParam<std::string>
{};

TEST_P(PerWorkload, DeterministicTrainRun)
{
    auto w = create(GetParam());
    lpp::trace::AccessRecorder a, b;
    w->run(w->trainInput(), a);
    w->run(w->trainInput(), b);
    EXPECT_EQ(a.accesses(), b.accesses());
}

TEST_P(PerWorkload, TrainRunSizes)
{
    auto w = create(GetParam());
    ClockSink clock;
    w->run(w->trainInput(), clock);
    // Training runs are large enough for phase analysis (the paper's
    // smallest run had 3.5M accesses; ours are scaled down ~3x) but
    // small enough to analyze quickly.
    EXPECT_GT(clock.accesses(), 300000u) << GetParam();
    EXPECT_LT(clock.accesses(), 8000000u) << GetParam();
    EXPECT_GT(clock.instructions(), clock.accesses());
}

TEST_P(PerWorkload, RefRunIsMuchLonger)
{
    auto w = create(GetParam());
    if (w->name() == "mesh")
        GTEST_SKIP() << "mesh prediction input has the same length";
    ClockSink train, ref;
    w->run(w->trainInput(), train);
    w->run(w->refInput(), ref);
    EXPECT_GT(ref.accesses(), 3 * train.accesses()) << GetParam();
    EXPECT_LT(ref.accesses(), 80000000u) << GetParam();
}

TEST_P(PerWorkload, AccessesFallInsideDeclaredArrays)
{
    auto w = create(GetParam());
    auto arrays = w->arrays(w->trainInput());
    ASSERT_FALSE(arrays.empty());

    class Checker : public lpp::trace::TraceSink
    {
      public:
        explicit Checker(const std::vector<ArrayInfo> &arr) : arrs(arr)
        {}

        void
        onAccess(lpp::trace::Addr addr) override
        {
            for (const auto &a : arrs) {
                if (a.contains(addr))
                    return;
            }
            ++outside;
        }

        const std::vector<ArrayInfo> &arrs;
        uint64_t outside = 0;
    } checker(arrays);

    w->run(w->trainInput(), checker);
    EXPECT_EQ(checker.outside, 0u) << GetParam();
}

TEST_P(PerWorkload, EmitsManualMarkers)
{
    auto w = create(GetParam());
    lpp::trace::ManualMarkerRecorder rec;
    w->run(w->trainInput(), rec);
    EXPECT_GT(rec.times().size(), 5u) << GetParam();
}

TEST_P(PerWorkload, BlocksAndEndsEmitted)
{
    auto w = create(GetParam());
    lpp::trace::BlockRecorder rec;
    w->run(w->trainInput(), rec);
    EXPECT_GT(rec.events().size(), 1000u);
    // Distinct blocks: more than one, fewer than a thousand (synthetic
    // programs are small).
    std::set<uint32_t> blocks;
    for (const auto &e : rec.events())
        blocks.insert(e.block);
    EXPECT_GT(blocks.size(), 2u);
    EXPECT_LT(blocks.size(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Suite, PerWorkload,
                         ::testing::Values("fft", "applu", "compress",
                                           "gcc", "tomcatv", "swim",
                                           "vortex", "mesh", "moldyn"));

TEST(Workloads, MeshTrainAndRefSameLengthDifferentOrder)
{
    auto w = create("mesh");
    ClockSink train, ref;
    w->run(w->trainInput(), train);
    w->run(w->refInput(), ref);
    EXPECT_EQ(train.accesses(), ref.accesses());
    EXPECT_EQ(train.instructions(), ref.instructions());

    lpp::trace::AccessRecorder ta, ra;
    w->run(w->trainInput(), ta);
    w->run(w->refInput(), ra);
    EXPECT_NE(ta.accesses(), ra.accesses()) << "sorted edges differ";
}

TEST(Workloads, AddressSpacesDontOverlap)
{
    auto w = create("swim");
    auto arrays = w->arrays(w->trainInput());
    for (size_t i = 0; i < arrays.size(); ++i) {
        for (size_t j = i + 1; j < arrays.size(); ++j) {
            bool disjoint = arrays[i].end() <= arrays[j].base ||
                            arrays[j].end() <= arrays[i].base;
            EXPECT_TRUE(disjoint)
                << arrays[i].name << " vs " << arrays[j].name;
        }
    }
}

TEST(AddressSpace, AllocatorBasics)
{
    AddressSpace as;
    auto a = as.allocate("A", 100);
    auto b = as.allocate("B", 100);
    EXPECT_GE(b.base, a.end());
    EXPECT_EQ(as.find(a.at(50)), &as.allArrays()[0]);
    EXPECT_EQ(as.find(0), nullptr);
    EXPECT_EQ(a.at(1) - a.at(0), 8u);
}

} // namespace
