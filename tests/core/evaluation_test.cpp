#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace lpp::core;

TEST(MarkerOverlap, ExactAndToleratedMatches)
{
    std::vector<uint64_t> manual = {1000, 5000, 9000};
    std::vector<uint64_t> autos = {1100, 5000, 20000};
    auto r = markerOverlap(manual, autos, 400);
    EXPECT_NEAR(r.recall, 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(r.precision, 2.0 / 3.0, 1e-12);
}

TEST(MarkerOverlap, EmptySets)
{
    auto r = markerOverlap({}, {});
    EXPECT_DOUBLE_EQ(r.recall, 0.0);
    EXPECT_DOUBLE_EQ(r.precision, 0.0);
    auto r2 = markerOverlap({100}, {});
    EXPECT_DOUBLE_EQ(r2.recall, 0.0);
    auto r3 = markerOverlap({}, {100});
    EXPECT_DOUBLE_EQ(r3.precision, 0.0);
}

TEST(MarkerOverlap, ManySpuriousAutosLowerPrecisionOnly)
{
    std::vector<uint64_t> manual = {10000};
    std::vector<uint64_t> autos = {10000, 20000, 30000, 40000};
    auto r = markerOverlap(manual, autos);
    EXPECT_DOUBLE_EQ(r.recall, 1.0);
    EXPECT_DOUBLE_EQ(r.precision, 0.25);
}

TEST(MarkerOverlap, ToleranceBoundaryInclusive)
{
    auto r = markerOverlap({1000}, {1400}, 400);
    EXPECT_DOUBLE_EQ(r.recall, 1.0);
    auto r2 = markerOverlap({1000}, {1401}, 400);
    EXPECT_DOUBLE_EQ(r2.recall, 0.0);
}

TEST(Granularity, RowFromReplay)
{
    Replay r;
    r.totalInstructions = 10000000;
    for (int step = 0; step < 10; ++step) {
        for (uint32_t p = 0; p < 2; ++p) {
            ExecutionRecord e;
            e.phase = p;
            e.instructions = p == 0 ? 600000 : 400000;
            r.executions.push_back(e);
        }
    }
    auto hier = lpp::grammar::PhaseHierarchy::fromSequence(r.sequence());
    auto row = granularity(r, hier);
    EXPECT_EQ(row.leafExecutions, 20u);
    EXPECT_DOUBLE_EQ(row.execLengthM, 10.0);
    EXPECT_DOUBLE_EQ(row.avgLeafSizeM, 0.5);
    // Largest composite = one (0 1) iteration = 1.0M instructions.
    EXPECT_DOUBLE_EQ(row.avgLargestCompositeM, 1.0);
}

TEST(Granularity, NoRepetitionUsesWholeRun)
{
    Replay r;
    r.totalInstructions = 3000000;
    for (uint32_t p = 0; p < 3; ++p) {
        ExecutionRecord e;
        e.phase = p;
        e.instructions = 1000000;
        r.executions.push_back(e);
    }
    auto hier = lpp::grammar::PhaseHierarchy::fromSequence(r.sequence());
    auto row = granularity(r, hier);
    EXPECT_DOUBLE_EQ(row.avgLargestCompositeM, 3.0);
}

TEST(CollectIntervals, UnitsAndBbvsAligned)
{
    auto runner = [](lpp::trace::TraceSink &sink) {
        for (int i = 0; i < 2500; ++i) {
            sink.onBlock(i < 1200 ? 1 : 2, 10);
            sink.onAccess(static_cast<uint64_t>(i % 700) * 8);
        }
        sink.onEnd();
    };
    auto prof = collectIntervals(runner, 1000, 16);
    EXPECT_EQ(prof.units.size(), 3u);
    EXPECT_EQ(prof.bbvs.size(), 3u);
    EXPECT_EQ(prof.units[0].accesses, 1000u);
    EXPECT_EQ(prof.units[2].accesses, 500u);
    // Different block mix in unit 0 vs unit 2.
    EXPECT_GT(lpp::bbv::manhattan(prof.bbvs[0], prof.bbvs[2]), 0.01);
}

TEST(CollectPhaseIntervals, KeysRestartAtMarkers)
{
    lpp::trace::MarkerTable table;
    table.set(100, 0);
    table.set(200, 1);
    auto runner = [](lpp::trace::TraceSink &sink) {
        for (int rep = 0; rep < 2; ++rep) {
            sink.onBlock(100, 5);
            for (int i = 0; i < 2500; ++i) {
                sink.onBlock(1, 10);
                sink.onAccess(static_cast<uint64_t>(i) * 8);
            }
            sink.onBlock(200, 5);
            for (int i = 0; i < 1200; ++i) {
                sink.onBlock(2, 10);
                sink.onAccess(0x900000 + static_cast<uint64_t>(i) * 8);
            }
        }
        sink.onEnd();
    };
    auto prof = collectPhaseIntervals(table, runner, 1000);
    ASSERT_EQ(prof.units.size(), prof.keys.size());
    // Phase 0: 2500 accesses = units (0,0) (0,1) (0,2);
    // phase 1: 1200 accesses = units (1,0) (1,1). Repeated twice.
    std::vector<uint64_t> want = {
        (0ULL << 32) | 0, (0ULL << 32) | 1, (0ULL << 32) | 2,
        (1ULL << 32) | 0, (1ULL << 32) | 1,
        (0ULL << 32) | 0, (0ULL << 32) | 1, (0ULL << 32) | 2,
        (1ULL << 32) | 0, (1ULL << 32) | 1,
    };
    EXPECT_EQ(prof.keys, want);
    EXPECT_EQ(prof.units[2].accesses, 500u);
}

TEST(EvaluateWorkloadIntegration, TomcatvEndToEnd)
{
    auto w = lpp::workloads::create("tomcatv");
    ASSERT_NE(w, nullptr);
    auto ev = evaluateWorkload(*w);

    // Five substep phases with markers.
    EXPECT_EQ(ev.analysis.detection.selection.phases.size(), 5u);
    // Strict accuracy perfect; relaxed coverage near complete.
    EXPECT_DOUBLE_EQ(ev.metrics.strictAccuracy, 1.0);
    EXPECT_GT(ev.metrics.relaxedCoverage, 0.95);
    EXPECT_GT(ev.metrics.relaxedAccuracy, 0.95);
    // Strict coverage reduced by the inconsistent correction substep.
    EXPECT_LT(ev.metrics.strictCoverage, 0.95);
    EXPECT_GT(ev.metrics.strictCoverage, 0.3);
    // The prediction run is much longer with more leaf executions.
    EXPECT_GT(ev.predictionRow.leafExecutions,
              3 * ev.detectionRow.leafExecutions);
    // The composite phase (time step) is larger than the leaf average.
    EXPECT_GT(ev.predictionRow.avgLargestCompositeM,
              2 * ev.predictionRow.avgLeafSizeM);
    // Auto markers catch every manual marker.
    EXPECT_GT(ev.refOverlap.recall, 0.95);
    // Phase locality repeats: tiny standard deviation.
    EXPECT_LT(ev.localityStddev, 0.01);
}

} // namespace
