#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "trace/instrument.hpp"

namespace {

using namespace lpp::core;
using namespace lpp::trace;

/** Feed a synthetic instrumented stream into a collector. */
class StreamBuilder
{
  public:
    explicit StreamBuilder(TraceSink &sink_) : sink(sink_) {}

    void
    phase(PhaseId p, uint64_t instructions, uint64_t accesses,
          Addr base = 0)
    {
        sink.onPhaseMarker(p);
        uint64_t blocks = instructions / 10;
        uint64_t done = 0;
        for (uint64_t b = 0; b < blocks; ++b) {
            sink.onBlock(1, 10);
            while (done * blocks < accesses * (b + 1)) {
                sink.onAccess(base + done * 8);
                ++done;
            }
        }
    }

    void
    prologue(uint64_t instructions)
    {
        for (uint64_t b = 0; b < instructions / 10; ++b)
            sink.onBlock(0, 10);
    }

    void end() { sink.onEnd(); }

    TraceSink &sink;
};

TEST(ExecutionCollector, CutsExecutionsAtMarkers)
{
    ExecutionCollector coll;
    StreamBuilder sb(coll);
    sb.prologue(500);
    sb.phase(0, 1000, 64);
    sb.phase(1, 2000, 128);
    sb.phase(0, 1000, 64);
    sb.end();

    const Replay &r = coll.replay();
    ASSERT_EQ(r.executions.size(), 3u);
    EXPECT_EQ(r.prologueInstructions, 500u);
    EXPECT_EQ(r.executions[0].phase, 0u);
    EXPECT_EQ(r.executions[0].instructions, 1000u);
    EXPECT_EQ(r.executions[0].accesses, 64u);
    EXPECT_EQ(r.executions[1].instructions, 2000u);
    EXPECT_EQ(r.executions[2].startInstr, 3500u);
    EXPECT_EQ(r.totalInstructions, 4500u);
    EXPECT_EQ(r.sequence(), (std::vector<PhaseId>{0, 1, 0}));
}

TEST(ExecutionCollector, PerExecutionLocalityMeasured)
{
    ExecutionCollector coll;
    StreamBuilder sb(coll);
    // Phase 0 streams fresh data (all cold); its repeat hits.
    sb.phase(0, 1000, 512, 0);
    sb.phase(0, 1000, 512, 0);
    sb.end();
    const Replay &r = coll.replay();
    ASSERT_EQ(r.executions.size(), 2u);
    EXPECT_GT(r.executions[0].locality.misses[7], 0u);
    EXPECT_EQ(r.executions[1].locality.misses[7], 0u)
        << "warm repeat of a 4KB working set must hit at 256KB";
}

std::vector<bool>
consistent(std::initializer_list<bool> v)
{
    return {v};
}

TEST(EvaluatePrediction, PerfectlyRepeatingPhase)
{
    ExecutionCollector coll;
    StreamBuilder sb(coll);
    for (int i = 0; i < 10; ++i)
        sb.phase(0, 1000, 64);
    sb.end();

    auto m = evaluatePrediction(coll.replay(), consistent({true}));
    EXPECT_DOUBLE_EQ(m.strictAccuracy, 1.0);
    EXPECT_DOUBLE_EQ(m.relaxedAccuracy, 1.0);
    EXPECT_EQ(m.strictPredictions, 9u);
    EXPECT_DOUBLE_EQ(m.strictCoverage, 0.9);
    EXPECT_DOUBLE_EQ(m.relaxedCoverage, 0.9);
}

TEST(EvaluatePrediction, TrainingInconsistentPhaseExcludedFromStrict)
{
    ExecutionCollector coll;
    StreamBuilder sb(coll);
    for (int i = 0; i < 10; ++i)
        sb.phase(0, 1000, 64);
    sb.end();

    auto m = evaluatePrediction(coll.replay(), consistent({false}));
    EXPECT_EQ(m.strictPredictions, 0u);
    EXPECT_DOUBLE_EQ(m.strictCoverage, 0.0);
    // Relaxed still predicts.
    EXPECT_EQ(m.relaxedPredictions, 9u);
}

TEST(EvaluatePrediction, RuntimeInconsistencyStopsStrictPrediction)
{
    ExecutionCollector coll;
    StreamBuilder sb(coll);
    sb.phase(0, 1000, 64);
    sb.phase(0, 1000, 64);  // predicted, exact
    sb.phase(0, 2000, 64);  // predicted, wrong; phase goes inconsistent
    sb.phase(0, 2000, 64);  // NOT strict-predicted anymore
    sb.end();

    auto m = evaluatePrediction(coll.replay(), consistent({true}));
    EXPECT_EQ(m.strictPredictions, 2u);
    EXPECT_DOUBLE_EQ(m.strictAccuracy, 0.5);
    EXPECT_EQ(m.relaxedPredictions, 3u);
    // Relaxed last-value: exec2 wrong (1000 predicted), exec3 right
    // (2000 predicted) -> 2/3.
    EXPECT_NEAR(m.relaxedAccuracy, 2.0 / 3.0, 1e-12);
}

TEST(EvaluatePrediction, VaryingPhaseLowRelaxedAccuracy)
{
    ExecutionCollector coll;
    StreamBuilder sb(coll);
    for (int i = 0; i < 12; ++i)
        sb.phase(0, 1000 + 10 * static_cast<uint64_t>(i), 64);
    sb.end();

    auto m = evaluatePrediction(coll.replay(), consistent({true}));
    EXPECT_DOUBLE_EQ(m.relaxedAccuracy, 0.0) << "MolDyn-like drift";
    EXPECT_EQ(m.strictPredictions, 1u) << "only until first mismatch";
}

TEST(EvaluatePrediction, EmptyReplay)
{
    Replay r;
    auto m = evaluatePrediction(r, {});
    EXPECT_DOUBLE_EQ(m.strictAccuracy, 0.0);
    EXPECT_DOUBLE_EQ(m.relaxedCoverage, 0.0);
}

TEST(PhaseLocalityStddev, IdenticalExecutionsGiveZero)
{
    ExecutionCollector coll;
    StreamBuilder sb(coll);
    sb.phase(0, 1000, 512, 0);     // cold warm-up
    for (int i = 0; i < 5; ++i)
        sb.phase(1, 1000, 512, 1 << 20); // identical warm executions
    sb.end();
    // Phase 1 executions after the first have identical locality; the
    // weighted stddev is dominated by them and small.
    double sd = phaseLocalityStddev(coll.replay());
    EXPECT_LT(sd, 0.05);
    EXPECT_GE(sd, 0.0);
}

TEST(ReplayInstrumented, EndToEndWithMarkerTable)
{
    MarkerTable table;
    table.set(100, 0);
    table.set(200, 1);

    auto runner = [](TraceSink &sink) {
        for (int r = 0; r < 3; ++r) {
            sink.onBlock(100, 10);
            for (int i = 0; i < 100; ++i) {
                sink.onBlock(1, 10);
                sink.onAccess(static_cast<Addr>(i) * 8);
            }
            sink.onBlock(200, 10);
            for (int i = 0; i < 50; ++i) {
                sink.onBlock(2, 10);
                sink.onAccess(0x100000 + static_cast<Addr>(i) * 8);
            }
        }
        sink.onEnd();
    };

    Replay r = replayInstrumented(table, runner);
    ASSERT_EQ(r.executions.size(), 6u);
    EXPECT_EQ(r.sequence(),
              (std::vector<PhaseId>{0, 1, 0, 1, 0, 1}));
    EXPECT_EQ(r.executions[0].instructions, 1010u);
    EXPECT_EQ(r.executions[1].instructions, 510u);
}

} // namespace
