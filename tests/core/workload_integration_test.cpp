#include <gtest/gtest.h>

#include <string>

#include "core/evaluation.hpp"
#include "core/statistical.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace lpp;

/**
 * Full-pipeline integration sweep: every prediction-amenable workload
 * must reproduce the paper's qualitative claims end to end. One
 * evaluation per workload is shared across the assertions via a
 * per-suite cache (the pipeline run is the expensive part).
 */
class WorkloadPipeline : public ::testing::TestWithParam<std::string>
{
  protected:
    static const core::WorkloadEvaluation &
    eval(const std::string &name)
    {
        static std::map<std::string, core::WorkloadEvaluation> cache;
        auto it = cache.find(name);
        if (it == cache.end()) {
            auto w = workloads::create(name);
            it = cache.emplace(name, core::evaluateWorkload(*w)).first;
        }
        return it->second;
    }
};

TEST_P(WorkloadPipeline, MarkersFoundAndExact)
{
    const auto &ev = eval(GetParam());
    const auto &sel = ev.analysis.detection.selection;
    EXPECT_GE(sel.phases.size(), 2u);
    EXPECT_LE(sel.phases.size(), 16u);
    for (const auto &p : sel.phases) {
        EXPECT_GT(p.executions, 0u) << "phase " << p.id;
        EXPECT_GT(p.markerQuality, 0.9) << "phase " << p.id;
    }
}

TEST_P(WorkloadPipeline, StrictAccuracyPerfect)
{
    const auto &ev = eval(GetParam());
    EXPECT_GE(ev.metrics.strictAccuracy, 0.99);
}

TEST_P(WorkloadPipeline, RelaxedCoverageNearComplete)
{
    const auto &ev = eval(GetParam());
    EXPECT_GE(ev.metrics.relaxedCoverage, 0.9);
}

TEST_P(WorkloadPipeline, AutoMarkersCatchManualOnes)
{
    const auto &ev = eval(GetParam());
    EXPECT_GE(ev.trainOverlap.recall, 0.95);
    EXPECT_GE(ev.refOverlap.recall, 0.95);
}

TEST_P(WorkloadPipeline, HierarchyHasCompositePhase)
{
    const auto &ev = eval(GetParam());
    ASSERT_NE(ev.analysis.hierarchy.root(), nullptr);
    EXPECT_NE(ev.analysis.hierarchy.largestComposite(), nullptr)
        << "every suite program repeats its time-step loop";
}

TEST_P(WorkloadPipeline, PhaseLocalityMoreRepeatableThanTenPercent)
{
    const auto &ev = eval(GetParam());
    EXPECT_LT(ev.localityStddev, 0.01);
}

TEST_P(WorkloadPipeline, PredictionRunScalesUp)
{
    const auto &ev = eval(GetParam());
    if (GetParam() == "mesh") {
        // Same-length inputs (the paper's sorted-edge variant).
        EXPECT_EQ(ev.predictionRow.leafExecutions,
                  ev.detectionRow.leafExecutions);
    } else if (GetParam() == "compress") {
        // Like the paper's Compress: the execution count stays put and
        // the phase *size* grows with the input instead.
        EXPECT_EQ(ev.predictionRow.leafExecutions,
                  ev.detectionRow.leafExecutions);
        EXPECT_GE(ev.predictionRow.avgLeafSizeM,
                  10 * ev.detectionRow.avgLeafSizeM);
    } else {
        EXPECT_GE(ev.predictionRow.leafExecutions,
                  3 * ev.detectionRow.leafExecutions);
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadPipeline,
                         ::testing::Values("fft", "applu", "compress",
                                           "tomcatv", "swim", "mesh",
                                           "moldyn"));

TEST(UnpredictableWorkloads, GccGetsBandsNotPoints)
{
    // The statistical extension: exact prediction fails on gcc, band
    // prediction is usefully reliable.
    auto w = workloads::create("gcc");
    auto analysis = core::PhaseAnalysis::analyzeWorkload(*w);
    ASSERT_FALSE(analysis.detection.selection.table.empty());

    auto ref = w->refInput();
    auto replay = core::replayInstrumented(
        analysis.detection.selection.table,
        [&](trace::TraceSink &s) { w->run(ref, s); });

    auto exact = core::evaluatePrediction(
        replay, analysis.consistentPhases());
    auto bands = core::evaluateStatisticalPrediction(replay);

    EXPECT_LT(exact.relaxedAccuracy, 0.2)
        << "gcc phase lengths are input dependent";
    EXPECT_GT(bands.hitRate, 0.6)
        << "quantile bands still capture the distribution";
    EXPECT_GT(bands.predictions, 50u);
}

} // namespace
