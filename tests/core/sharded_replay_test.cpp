/**
 * @file
 * Property suite for the sharded intra-workload pipeline: every
 * consumer of a chunked replay — exact reuse distances, precount,
 * block recording, the variable-distance sampler, and the interval
 * profile (cache counters + BBVs) — must be bit-identical to its
 * serial single-replay counterpart at every chunk size (including 1
 * and longer-than-the-trace) and every pool size.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/evaluation.hpp"
#include "phase/detector.hpp"
#include "reuse/sampler.hpp"
#include "reuse/sharded_reuse.hpp"
#include "reuse/stack.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"
#include "trace/memory_trace.hpp"
#include "trace/recorder.hpp"

namespace {

using lpp::SplitMix64;
using lpp::support::ThreadPool;
using lpp::trace::MemoryTrace;

/**
 * A synthetic mixed event stream: blocks, single accesses, batches of
 * varying length, occasional markers, and (optionally) an end event.
 * Addresses mix a hot working set with a cold wandering tail so reuse
 * distances span everything from 0 to infinite.
 */
MemoryTrace
makeTrace(uint64_t seed, size_t target_accesses, uint64_t working_set,
          bool with_end)
{
    MemoryTrace t;
    SplitMix64 sm(seed);
    uint64_t coldBase = working_set + 1000;
    size_t accesses = 0;
    std::vector<lpp::trace::Addr> batch;
    while (accesses < target_accesses) {
        uint64_t roll = sm.next() % 100;
        if (roll < 25) {
            t.onBlock(static_cast<lpp::trace::BlockId>(sm.next() % 96),
                      static_cast<uint32_t>(1 + sm.next() % 24));
        } else if (roll < 27) {
            t.onManualMarker(static_cast<uint32_t>(sm.next() % 4));
        } else if (roll < 29) {
            t.onPhaseMarker(static_cast<uint32_t>(sm.next() % 3));
        } else if (roll < 60) {
            uint64_t e = sm.next() % 10 == 0 ? coldBase++
                                             : sm.next() % working_set;
            t.onAccess(e * 8);
            ++accesses;
        } else {
            size_t n = 1 + sm.next() % 17;
            batch.clear();
            for (size_t i = 0; i < n; ++i) {
                uint64_t e = sm.next() % 8 == 0 ? coldBase++
                                                : sm.next() % working_set;
                batch.push_back(e * 8);
            }
            t.onAccessBatch(batch.data(), batch.size());
            accesses += n;
        }
    }
    if (with_end)
        t.onEnd();
    return t;
}

/** Serial oracle: per-access (element, distance) via one ReuseStack. */
struct SerialSweep : lpp::trace::TraceSink
{
    lpp::reuse::ReuseStack stack{1 << 12};
    std::vector<uint64_t> elements, distances;

    void
    onAccess(lpp::trace::Addr addr) override
    {
        uint64_t e = lpp::trace::toElement(addr);
        elements.push_back(e);
        distances.push_back(stack.access(e));
    }

    void
    onAccessBatch(const lpp::trace::Addr *addrs, size_t n) override
    {
        for (size_t i = 0; i < n; ++i)
            SerialSweep::onAccess(addrs[i]);
    }
};

std::vector<uint64_t>
chunkSizes(uint64_t accesses)
{
    return {1, 7, 100, 1000, accesses / 2 + 1, accesses + 1};
}

TEST(ShardedReplay, ChunksPartitionTheEventStream)
{
    MemoryTrace t = makeTrace(11, 2000, 200, true);
    for (uint64_t target : chunkSizes(t.accessCount())) {
        auto ranges = t.chunks(target);
        ASSERT_FALSE(ranges.empty()) << "target " << target;
        size_t event = 0;
        uint64_t access = 0;
        for (const auto &r : ranges) {
            EXPECT_EQ(r.firstEvent, event) << "target " << target;
            EXPECT_EQ(r.firstAccess, access) << "target " << target;
            event += r.eventCount;
            access += r.accessCount;
        }
        EXPECT_EQ(event, t.eventCount()) << "target " << target;
        EXPECT_EQ(access, t.accessCount()) << "target " << target;
    }
}

TEST(ShardedReplay, SweepDistancesBitIdenticalToSerialStack)
{
    MemoryTrace t = makeTrace(23, 4000, 300, true);
    SerialSweep serial;
    t.replay(serial);

    std::unordered_set<uint64_t> distinct(serial.elements.begin(),
                                          serial.elements.end());

    for (size_t threads : {1u, 4u}) {
        ThreadPool pool(threads);
        for (uint64_t chunk : chunkSizes(t.accessCount())) {
            lpp::reuse::ShardedSweepConfig cfg;
            cfg.chunkAccesses = chunk;
            std::vector<uint64_t> elements, distances;
            auto counts = lpp::reuse::shardedReuseSweep(
                t, cfg, pool, [&](const lpp::reuse::ShardChunk &c) {
                    EXPECT_EQ(c.elements.size(), c.range.accessCount);
                    EXPECT_EQ(elements.size(), c.range.firstAccess);
                    elements.insert(elements.end(), c.elements.begin(),
                                    c.elements.end());
                    distances.insert(distances.end(),
                                     c.distances.begin(),
                                     c.distances.end());
                });
            ASSERT_EQ(elements, serial.elements)
                << "chunk " << chunk << " threads " << threads;
            ASSERT_EQ(distances, serial.distances)
                << "chunk " << chunk << " threads " << threads;
            EXPECT_EQ(counts.accesses, t.accessCount());
            EXPECT_EQ(counts.distinctElements, distinct.size());
        }
    }
}

TEST(ShardedReplay, SweepBitIdenticalAcrossFrameGeometries)
{
    // The same stream recorded with tiny frames (many sealed, LZ-packed
    // frames; chunk boundaries landing mid-frame) must sweep
    // bit-identically to the default single-frame recording at every
    // pool size.
    MemoryTrace reference = makeTrace(41, 5000, 250, true);
    SerialSweep serial;
    reference.replay(serial);

    for (uint64_t frameTarget : {64u, 1021u}) {
        MemoryTrace t;
        t.setFrameTargetAccesses(frameTarget);
        reference.replay(t);
        ASSERT_GT(t.sealedFrameCount(), 2u)
            << "frame target " << frameTarget;

        for (size_t threads : {1u, 2u, 4u}) {
            ThreadPool pool(threads);
            lpp::reuse::ShardedSweepConfig cfg;
            cfg.chunkAccesses = 777; // straddles frame boundaries
            std::vector<uint64_t> elements, distances;
            lpp::reuse::shardedReuseSweep(
                t, cfg, pool, [&](const lpp::reuse::ShardChunk &c) {
                    elements.insert(elements.end(), c.elements.begin(),
                                    c.elements.end());
                    distances.insert(distances.end(),
                                     c.distances.begin(),
                                     c.distances.end());
                });
            ASSERT_EQ(elements, serial.elements)
                << "frames " << frameTarget << " threads " << threads;
            ASSERT_EQ(distances, serial.distances)
                << "frames " << frameTarget << " threads " << threads;
        }
    }
}

TEST(ShardedReplay, PrecountMatchesSerialPrecount)
{
    MemoryTrace t = makeTrace(37, 3000, 150, true);
    auto serial = lpp::phase::PhaseDetector::precountFromTrace(t);
    for (size_t threads : {1u, 4u}) {
        ThreadPool pool(threads);
        for (uint64_t chunk : chunkSizes(t.accessCount())) {
            lpp::reuse::ShardedSweepConfig cfg;
            cfg.chunkAccesses = chunk;
            auto counts = lpp::reuse::shardedPrecount(t, cfg, pool);
            EXPECT_EQ(counts.accesses, serial.accesses)
                << "chunk " << chunk << " threads " << threads;
            EXPECT_EQ(counts.distinctElements, serial.distinctElements)
                << "chunk " << chunk << " threads " << threads;
        }
    }
}

TEST(ShardedReplay, ChunkBlockRecordersAbsorbToSerialRecording)
{
    MemoryTrace t = makeTrace(41, 3000, 250, true);
    lpp::trace::BlockRecorder serial;
    t.replay(serial);

    ThreadPool pool(4);
    for (uint64_t chunk : chunkSizes(t.accessCount())) {
        lpp::reuse::ShardedSweepConfig cfg;
        cfg.chunkAccesses = chunk;
        lpp::trace::BlockRecorder merged;
        lpp::reuse::shardedReuseSweep(
            t, cfg, pool, [&](const lpp::reuse::ShardChunk &c) {
                merged.absorb(c.blocks);
            });
        EXPECT_EQ(merged.totalAccesses(), serial.totalAccesses());
        EXPECT_EQ(merged.totalInstructions(), serial.totalInstructions());
        ASSERT_EQ(merged.events().size(), serial.events().size())
            << "chunk " << chunk;
        for (size_t i = 0; i < merged.events().size(); ++i) {
            const auto &a = merged.events()[i];
            const auto &b = serial.events()[i];
            EXPECT_EQ(a.block, b.block) << i;
            EXPECT_EQ(a.instructions, b.instructions) << i;
            EXPECT_EQ(a.accessTime, b.accessTime) << i;
            EXPECT_EQ(a.instrTime, b.instrTime) << i;
        }
    }
}

TEST(ShardedReplay, SamplerFedExternalDistancesBitIdentical)
{
    MemoryTrace t = makeTrace(53, 6000, 400, true);

    lpp::reuse::SamplerConfig cfg;
    cfg.targetSamples = 60;
    cfg.checkInterval = 257; // many feedback rounds over 6000 accesses
    cfg.initialQualification = 16;
    cfg.initialTemporal = 8;
    cfg.initialSpatial = 4;
    cfg.expectedAccesses = t.accessCount();
    cfg.floorQualification = 2;
    cfg.floorTemporal = 1;

    lpp::reuse::VariableDistanceSampler serial(cfg);
    t.replay(serial);
    ASSERT_GT(serial.sampleCount(), 0u);
    ASSERT_GT(serial.adjustments(), 0u);

    ThreadPool pool(4);
    for (uint64_t chunk : chunkSizes(t.accessCount())) {
        auto sharded =
            lpp::reuse::VariableDistanceSampler::externalDistances(cfg);
        lpp::reuse::ShardedSweepConfig scfg;
        scfg.chunkAccesses = chunk;
        lpp::reuse::shardedReuseSweep(
            t, scfg, pool, [&](const lpp::reuse::ShardChunk &c) {
                for (size_t i = 0; i < c.elements.size(); ++i)
                    sharded.observe(c.elements[i],
                                    c.range.firstAccess + i,
                                    c.distances[i]);
            });

        EXPECT_EQ(sharded.accessCount(), serial.accessCount());
        EXPECT_EQ(sharded.sampleCount(), serial.sampleCount());
        EXPECT_EQ(sharded.adjustments(), serial.adjustments());
        EXPECT_EQ(sharded.qualificationThreshold(),
                  serial.qualificationThreshold());
        EXPECT_EQ(sharded.temporalThreshold(),
                  serial.temporalThreshold());
        EXPECT_EQ(sharded.spatialThreshold(),
                  serial.spatialThreshold());
        ASSERT_EQ(sharded.samples().size(), serial.samples().size())
            << "chunk " << chunk;
        for (size_t d = 0; d < sharded.samples().size(); ++d) {
            const auto &x = sharded.samples()[d];
            const auto &y = serial.samples()[d];
            EXPECT_EQ(x.element, y.element) << d;
            ASSERT_EQ(x.accesses.size(), y.accesses.size()) << d;
            for (size_t i = 0; i < x.accesses.size(); ++i) {
                EXPECT_EQ(x.accesses[i].time, y.accesses[i].time);
                EXPECT_EQ(x.accesses[i].distance,
                          y.accesses[i].distance);
            }
        }
    }
}

void
expectSameProfile(const lpp::core::IntervalProfile &sharded,
                  const lpp::core::IntervalProfile &serial,
                  uint64_t chunk, size_t threads)
{
    ASSERT_EQ(sharded.units.size(), serial.units.size())
        << "chunk " << chunk << " threads " << threads;
    for (size_t i = 0; i < sharded.units.size(); ++i) {
        EXPECT_EQ(sharded.units[i].accesses, serial.units[i].accesses)
            << "unit " << i << " chunk " << chunk;
        EXPECT_EQ(sharded.units[i].misses, serial.units[i].misses)
            << "unit " << i << " chunk " << chunk;
    }
    // Bit-identical doubles: the BBV projection accumulates in sorted
    // block order on both paths.
    EXPECT_EQ(sharded.bbvs, serial.bbvs)
        << "chunk " << chunk << " threads " << threads;
}

TEST(ShardedReplay, IntervalProfileBitIdenticalToSerialCollector)
{
    MemoryTrace t = makeTrace(67, 5000, 600, true);
    for (uint64_t unit : {64ull, 777ull, 10000ull}) {
        auto serial = lpp::core::collectIntervals(
            [&](lpp::trace::TraceSink &s) { t.replay(s); }, unit, 16);
        for (size_t threads : {1u, 4u}) {
            ThreadPool pool(threads);
            for (uint64_t chunk : chunkSizes(t.accessCount())) {
                auto sharded = lpp::core::collectIntervalsSharded(
                    t, unit, 16, chunk, &pool);
                expectSameProfile(sharded, serial, chunk, threads);
            }
        }
    }
}

TEST(ShardedReplay, IntervalProfileHandlesMissingEndEvent)
{
    // Without an end event the serial driver drops the trailing
    // partial unit; the sharded collector must mirror that cut.
    MemoryTrace t = makeTrace(71, 3001, 200, false);
    ThreadPool pool(4);
    for (uint64_t unit : {100ull, 3001ull}) {
        auto serial = lpp::core::collectIntervals(
            [&](lpp::trace::TraceSink &s) { t.replay(s); }, unit, 8);
        for (uint64_t chunk :
             std::vector<uint64_t>{9, t.accessCount() + 1}) {
            auto sharded = lpp::core::collectIntervalsSharded(
                t, unit, 8, chunk, &pool);
            expectSameProfile(sharded, serial, chunk, 4);
        }
    }
}

TEST(ShardedReplay, EmptyAndTinyTraces)
{
    ThreadPool pool(2);
    MemoryTrace empty;
    auto profile =
        lpp::core::collectIntervalsSharded(empty, 10, 8, 4, &pool);
    EXPECT_TRUE(profile.units.empty());
    EXPECT_TRUE(profile.bbvs.empty());

    lpp::reuse::ShardedSweepConfig cfg;
    cfg.chunkAccesses = 4;
    auto counts = lpp::reuse::shardedPrecount(empty, cfg, pool);
    EXPECT_EQ(counts.accesses, 0u);
    EXPECT_EQ(counts.distinctElements, 0u);

    // One access, chunk size far larger than the trace.
    MemoryTrace one;
    one.onAccess(64);
    one.onEnd();
    SerialSweep serial;
    one.replay(serial);
    cfg.chunkAccesses = 1000;
    std::vector<uint64_t> distances;
    lpp::reuse::shardedReuseSweep(
        one, cfg, pool, [&](const lpp::reuse::ShardChunk &c) {
            distances.insert(distances.end(), c.distances.begin(),
                             c.distances.end());
        });
    EXPECT_EQ(distances, serial.distances);
}

} // namespace
