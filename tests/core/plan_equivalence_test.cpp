/**
 * @file
 * Equivalence suite for the execution-plan refactor: the planned
 * (coalesced, replayed, pooled) evaluation of every registry workload
 * must be bit-identical to the pre-refactor serial path — one program
 * execution per consumer, assembled with the same public building
 * blocks the old evaluateWorkload used.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/evaluation.hpp"
#include "core/execution_plan.hpp"
#include "support/thread_pool.hpp"
#include "trace/validator.hpp"
#include "workloads/registry.hpp"

namespace {

using lpp::core::AnalysisConfig;
using lpp::core::WorkloadEvaluation;

/** The pre-refactor pipeline: one dedicated execution per consumer. */
WorkloadEvaluation
serialReference(const lpp::workloads::Workload &w,
                const AnalysisConfig &config)
{
    WorkloadEvaluation ev;
    ev.name = w.name();
    ev.analysis = lpp::core::PhaseAnalysis::analyzeWorkload(w, config);

    const lpp::trace::MarkerTable &table =
        ev.analysis.detection.selection.table;
    auto train_in = w.trainInput();
    auto ref_in = w.refInput();

    ev.train = lpp::core::runInstrumented(
        table, [&](lpp::trace::TraceSink &s) { w.run(train_in, s); });
    ev.ref = lpp::core::runInstrumented(
        table, [&](lpp::trace::TraceSink &s) { w.run(ref_in, s); });

    ev.metrics = lpp::core::evaluatePrediction(
        ev.ref.replay, ev.analysis.consistentPhases());

    auto train_hier = lpp::grammar::PhaseHierarchy::fromSequence(
        ev.train.replay.sequence());
    auto ref_hier = lpp::grammar::PhaseHierarchy::fromSequence(
        ev.ref.replay.sequence());
    ev.detectionRow = lpp::core::granularity(ev.train.replay, train_hier);
    ev.predictionRow = lpp::core::granularity(ev.ref.replay, ref_hier);

    ev.localityStddev = lpp::core::phaseLocalityStddev(ev.ref.replay);

    auto auto_times = [](const lpp::core::Replay &r) {
        std::vector<uint64_t> t;
        for (const auto &e : r.executions)
            t.push_back(e.startAccess);
        return t;
    };
    ev.trainOverlap = lpp::core::markerOverlap(
        ev.train.manualTimes, auto_times(ev.train.replay));
    ev.refOverlap = lpp::core::markerOverlap(ev.ref.manualTimes,
                                             auto_times(ev.ref.replay));
    return ev;
}

void
expectSameReplay(const lpp::core::Replay &a, const lpp::core::Replay &b,
                 const std::string &what)
{
    EXPECT_EQ(a.totalInstructions, b.totalInstructions) << what;
    EXPECT_EQ(a.totalAccesses, b.totalAccesses) << what;
    EXPECT_EQ(a.prologueInstructions, b.prologueInstructions) << what;
    ASSERT_EQ(a.executions.size(), b.executions.size()) << what;
    for (size_t i = 0; i < a.executions.size(); ++i) {
        const auto &x = a.executions[i];
        const auto &y = b.executions[i];
        EXPECT_EQ(x.phase, y.phase) << what << " #" << i;
        EXPECT_EQ(x.startInstr, y.startInstr) << what << " #" << i;
        EXPECT_EQ(x.startAccess, y.startAccess) << what << " #" << i;
        EXPECT_EQ(x.instructions, y.instructions) << what << " #" << i;
        EXPECT_EQ(x.accesses, y.accesses) << what << " #" << i;
        EXPECT_EQ(x.locality.accesses, y.locality.accesses)
            << what << " #" << i;
        EXPECT_EQ(x.locality.misses, y.locality.misses)
            << what << " #" << i;
    }
}

std::string
hierarchyText(const lpp::grammar::PhaseHierarchy &h)
{
    return h.root() ? h.root()->toString() : "-";
}

void
expectSameEvaluation(const WorkloadEvaluation &planned,
                     const WorkloadEvaluation &serial)
{
    const std::string &w = serial.name;
    EXPECT_EQ(planned.name, serial.name);

    // Detection counters and locality-analysis output.
    const auto &pd = planned.analysis.detection;
    const auto &sd = serial.analysis.detection;
    EXPECT_EQ(pd.dataSamples, sd.dataSamples) << w;
    EXPECT_EQ(pd.accessSamples, sd.accessSamples) << w;
    EXPECT_EQ(pd.samplerAdjustments, sd.samplerAdjustments) << w;
    EXPECT_EQ(pd.trainAccesses, sd.trainAccesses) << w;
    EXPECT_EQ(pd.trainInstructions, sd.trainInstructions) << w;
    EXPECT_EQ(pd.boundaryTimes, sd.boundaryTimes) << w;
    EXPECT_EQ(pd.partitionResult.boundaries,
              sd.partitionResult.boundaries) << w;
    EXPECT_EQ(pd.partitionResult.cost, sd.partitionResult.cost) << w;
    EXPECT_EQ(pd.partitionResult.nodes, sd.partitionResult.nodes) << w;
    EXPECT_EQ(pd.filterStats.dataSamples, sd.filterStats.dataSamples) << w;
    EXPECT_EQ(pd.filterStats.dropped, sd.filterStats.dropped) << w;
    EXPECT_EQ(pd.filterStats.accessesIn, sd.filterStats.accessesIn) << w;
    EXPECT_EQ(pd.filterStats.accessesKept, sd.filterStats.accessesKept)
        << w;

    // Marker selection: table, phases, training executions.
    auto ptab = pd.selection.table.entries();
    auto stab = sd.selection.table.entries();
    std::sort(ptab.begin(), ptab.end());
    std::sort(stab.begin(), stab.end());
    EXPECT_EQ(ptab, stab) << w;
    EXPECT_EQ(pd.selection.detectedExecutions,
              sd.selection.detectedExecutions) << w;
    EXPECT_EQ(pd.selection.candidateBlocks, sd.selection.candidateBlocks)
        << w;
    EXPECT_EQ(pd.selection.regions, sd.selection.regions) << w;
    ASSERT_EQ(pd.selection.phases.size(), sd.selection.phases.size()) << w;
    for (size_t i = 0; i < pd.selection.phases.size(); ++i) {
        const auto &x = pd.selection.phases[i];
        const auto &y = sd.selection.phases[i];
        EXPECT_EQ(x.id, y.id) << w;
        EXPECT_EQ(x.marker, y.marker) << w;
        EXPECT_EQ(x.executions, y.executions) << w;
        EXPECT_EQ(x.minInstructions, y.minInstructions) << w;
        EXPECT_EQ(x.maxInstructions, y.maxInstructions) << w;
        EXPECT_EQ(x.meanInstructions, y.meanInstructions) << w;
        EXPECT_EQ(x.markerQuality, y.markerQuality) << w;
    }
    EXPECT_EQ(pd.selection.sequence(), sd.selection.sequence()) << w;
    EXPECT_EQ(hierarchyText(planned.analysis.hierarchy),
              hierarchyText(serial.analysis.hierarchy)) << w;

    // Instrumented runs: the training side of the planned pipeline is
    // a REPLAY of the recorded sampling stream — it must be
    // indistinguishable from the serial live run.
    expectSameReplay(planned.train.replay, serial.train.replay,
                     w + " train");
    expectSameReplay(planned.ref.replay, serial.ref.replay, w + " ref");
    EXPECT_EQ(planned.train.manualTimes, serial.train.manualTimes) << w;
    EXPECT_EQ(planned.ref.manualTimes, serial.ref.manualTimes) << w;

    // Derived metrics, bit for bit.
    EXPECT_EQ(planned.metrics.strictAccuracy, serial.metrics.strictAccuracy)
        << w;
    EXPECT_EQ(planned.metrics.strictCoverage, serial.metrics.strictCoverage)
        << w;
    EXPECT_EQ(planned.metrics.relaxedAccuracy,
              serial.metrics.relaxedAccuracy) << w;
    EXPECT_EQ(planned.metrics.relaxedCoverage,
              serial.metrics.relaxedCoverage) << w;
    EXPECT_EQ(planned.metrics.strictPredictions,
              serial.metrics.strictPredictions) << w;
    EXPECT_EQ(planned.metrics.relaxedPredictions,
              serial.metrics.relaxedPredictions) << w;

    auto sameRow = [&](const lpp::core::GranularityRow &x,
                       const lpp::core::GranularityRow &y) {
        EXPECT_EQ(x.leafExecutions, y.leafExecutions) << w;
        EXPECT_EQ(x.execLengthM, y.execLengthM) << w;
        EXPECT_EQ(x.avgLeafSizeM, y.avgLeafSizeM) << w;
        EXPECT_EQ(x.avgLargestCompositeM, y.avgLargestCompositeM) << w;
    };
    sameRow(planned.detectionRow, serial.detectionRow);
    sameRow(planned.predictionRow, serial.predictionRow);

    EXPECT_EQ(planned.localityStddev, serial.localityStddev) << w;
    EXPECT_EQ(planned.trainOverlap.recall, serial.trainOverlap.recall) << w;
    EXPECT_EQ(planned.trainOverlap.precision,
              serial.trainOverlap.precision) << w;
    EXPECT_EQ(planned.refOverlap.recall, serial.refOverlap.recall) << w;
    EXPECT_EQ(planned.refOverlap.precision, serial.refOverlap.precision)
        << w;
}

/** All nine registry workloads through one shared, pooled plan. */
TEST(PlanEquivalence, AllWorkloadsBitIdenticalToSerialPipeline)
{
    AnalysisConfig config;
    auto names = lpp::workloads::allNames();
    ASSERT_EQ(names.size(), 9u);

    auto planned = lpp::core::evaluateWorkloads(names, config);
    ASSERT_EQ(planned.size(), names.size());

    for (size_t i = 0; i < names.size(); ++i) {
        auto w = lpp::workloads::create(names[i]);
        ASSERT_NE(w, nullptr);
        auto serial = serialReference(*w, config);
        expectSameEvaluation(planned[i], serial);
        // The whole point of the plan: exactly two live program
        // executions per workload (training, reference) — precount
        // and sampling both consume the training recording.
        EXPECT_EQ(planned[i].programExecutions, 2u) << names[i];
    }
}

/** Single-workload plan: same result, and the stream stays
 *  protocol-clean under an explicitly attached validating pass. */
TEST(PlanEquivalence, SingleWorkloadPlanMatchesAndValidates)
{
    AnalysisConfig config;
    auto w = lpp::workloads::create("fft");
    ASSERT_NE(w, nullptr);

    WorkloadEvaluation planned;
    lpp::trace::ValidatingSink watchdog;
    lpp::core::ExecutionPlan plan;
    lpp::core::registerWorkloadEvaluation(plan, *w, config, &planned);
    // Extra consumer on the training execution: shares the run, sees
    // the identical stream, and checks the sink protocol end to end.
    plan.addPass(lpp::core::workloadKey(*w, w->trainInput()),
                 [&](lpp::trace::TraceSink &s) {
                     w->run(w->trainInput(), s);
                 },
                 [&] { return &watchdog; });
    plan.run();
    planned.programExecutions =
        plan.programExecutions(w->name() + "@");

    EXPECT_TRUE(watchdog.ok()) << watchdog.reportText();
    EXPECT_TRUE(watchdog.ended());
    EXPECT_LE(planned.programExecutions, 2u);

    auto serial = serialReference(*w, config);
    expectSameEvaluation(planned, serial);
}

/** The sharded intra-workload path (chunked replay of the training
 *  recording for precount + sampling + block trace) must be
 *  bit-identical to the serial reference at every thread count. At one
 *  thread the serial replay path runs; at two and four the sharded
 *  sweeps run on the same pool the plan schedules on. */
TEST(PlanEquivalence, ShardedEvaluationBitIdenticalAcrossThreadCounts)
{
    AnalysisConfig config;
    auto w = lpp::workloads::create("fft");
    ASSERT_NE(w, nullptr);
    auto serial = serialReference(*w, config);

    for (size_t threads : {1u, 2u, 4u}) {
        lpp::support::ThreadPool pool(threads);
        AnalysisConfig cfg = config;
        // Small chunks force many boundary resolutions per sweep.
        cfg.sharding.chunkAccesses = 4096;
        auto planned =
            lpp::core::evaluateWorkloads({"fft"}, cfg, pool);
        ASSERT_EQ(planned.size(), 1u);
        expectSameEvaluation(planned[0], serial);
        EXPECT_EQ(planned[0].programExecutions, 2u)
            << threads << " threads";
    }

    // Opting out of sharding on a multi-threaded pool keeps the
    // replay-pass path and the same results.
    lpp::support::ThreadPool pool(4);
    AnalysisConfig off = config;
    off.sharding.enabled = false;
    auto planned = lpp::core::evaluateWorkloads({"fft"}, off, pool);
    ASSERT_EQ(planned.size(), 1u);
    expectSameEvaluation(planned[0], serial);
}

/** Trace-cache paths: a cold-recording evaluation (cache miss, live
 *  execution + store publish) and a warm-cache evaluation (0 live
 *  executions, store replay) are both bit-identical to the serial
 *  reference pipeline. */
TEST(PlanEquivalence, TraceCacheColdAndWarmBitIdenticalToSerial)
{
    namespace fs = std::filesystem;
    auto dir = fs::temp_directory_path() /
               ("lpp_eq_cache_" + std::to_string(::getpid()));
    fs::remove_all(dir);

    AnalysisConfig config;
    config.traceCache.enabled = true;
    config.traceCache.dir = dir.string();
    auto w = lpp::workloads::create("mesh");
    ASSERT_NE(w, nullptr);

    auto serial = serialReference(*w, AnalysisConfig{});

    // Cold: every probe misses, records live, and publishes.
    auto cold = lpp::core::evaluateWorkload(*w, config);
    expectSameEvaluation(cold, serial);
    EXPECT_EQ(cold.programExecutions, 2u);
    EXPECT_EQ(cold.traceCacheHits, 0u);
    EXPECT_EQ(cold.traceCacheMisses, 2u);
    EXPECT_GT(cold.traceBytes, 0u);

    // Warm: both executions replay from the store.
    auto warm = lpp::core::evaluateWorkload(*w, config);
    expectSameEvaluation(warm, serial);
    EXPECT_EQ(warm.programExecutions, 0u);
    EXPECT_EQ(warm.traceCacheHits, 2u);
    EXPECT_EQ(warm.traceCacheMisses, 0u);
    EXPECT_GT(warm.traceBytes, 0u);

    // The analysis-only entry point hits the same training entry.
    auto analysisOnly = lpp::core::analyzeWorkload(*w, config);
    EXPECT_EQ(analysisOnly.programExecutions, 0u);
    EXPECT_EQ(analysisOnly.traceCacheHits, 1u);
    EXPECT_EQ(hierarchyText(analysisOnly.analysis.hierarchy),
              hierarchyText(serial.analysis.hierarchy));
    EXPECT_EQ(analysisOnly.analysis.detection.boundaryTimes,
              serial.analysis.detection.boundaryTimes);

    // A corrupt payload reads as a miss and falls back to live
    // execution with an identical result.
    bool truncated = false;
    for (const auto &entry : fs::directory_iterator(dir)) {
        fs::resize_file(entry.path(),
                        fs::file_size(entry.path()) / 2);
        truncated = true;
    }
    ASSERT_TRUE(truncated);
    auto fallback = lpp::core::evaluateWorkload(*w, config);
    expectSameEvaluation(fallback, serial);

    fs::remove_all(dir);
}

/** Interval profiles registered against an evaluation's reference key
 *  share its execution and still match the standalone collector. */
TEST(PlanEquivalence, SharedIntervalPassesMatchStandaloneCollectors)
{
    AnalysisConfig config;
    auto w = lpp::workloads::create("compress");
    ASSERT_NE(w, nullptr);
    const uint64_t unit = 50000;

    WorkloadEvaluation planned;
    lpp::core::IntervalProfile sharedIntervals;
    lpp::core::PhaseIntervalProfile sharedPhases;
    {
        lpp::core::ExecutionPlan plan;
        auto nodes = lpp::core::registerWorkloadEvaluation(plan, *w,
                                                           config,
                                                           &planned);
        auto ref_key = lpp::core::workloadKey(*w, w->refInput());
        auto ref_runner = [&](lpp::trace::TraceSink &s) {
            w->run(w->refInput(), s);
        };
        lpp::core::registerIntervalProfile(plan, ref_key, ref_runner,
                                           unit, 32, &sharedIntervals);
        lpp::core::registerPhaseIntervalProfile(
            plan, ref_key, &planned.analysis.detection.selection.table,
            ref_runner, unit, &sharedPhases, {nodes.analysisReady});
        plan.run();
        planned.programExecutions =
            plan.programExecutions(w->name() + "@");
        // Both interval passes coalesced with the evaluation's own
        // reference execution: still two live runs in total.
        EXPECT_EQ(planned.programExecutions, 2u);
    }

    auto serial = serialReference(*w, config);
    expectSameEvaluation(planned, serial);

    auto aloneIntervals = lpp::core::collectIntervals(
        [&](lpp::trace::TraceSink &s) { w->run(w->refInput(), s); },
        unit, 32);
    ASSERT_EQ(sharedIntervals.units.size(), aloneIntervals.units.size());
    for (size_t i = 0; i < sharedIntervals.units.size(); ++i) {
        EXPECT_EQ(sharedIntervals.units[i].accesses,
                  aloneIntervals.units[i].accesses);
        EXPECT_EQ(sharedIntervals.units[i].misses,
                  aloneIntervals.units[i].misses);
    }
    EXPECT_EQ(sharedIntervals.bbvs, aloneIntervals.bbvs);

    auto alonePhases = lpp::core::collectPhaseIntervals(
        serial.analysis.detection.selection.table,
        [&](lpp::trace::TraceSink &s) { w->run(w->refInput(), s); },
        unit);
    ASSERT_EQ(sharedPhases.units.size(), alonePhases.units.size());
    EXPECT_EQ(sharedPhases.keys, alonePhases.keys);
    for (size_t i = 0; i < sharedPhases.units.size(); ++i) {
        EXPECT_EQ(sharedPhases.units[i].accesses,
                  alonePhases.units[i].accesses);
        EXPECT_EQ(sharedPhases.units[i].misses,
                  alonePhases.units[i].misses);
    }
}

} // namespace
