/**
 * @file
 * Static-oracle verification tests: for every statically described
 * workload the zero-execution prediction must match the dynamically
 * measured training run bit for bit — histogram, miss curve, footprint
 * and manual-marker clocks — while the oracle itself consumes no
 * program executions beyond the pipeline's own.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/static_oracle.hpp"
#include "staticloc/predict.hpp"
#include "workloads/registry.hpp"
#include "workloads/static_workload.hpp"

namespace {

using namespace lpp;
using core::AnalysisConfig;
using core::StaticOracleReport;
using staticloc::Method;

AnalysisConfig
oracleConfig()
{
    AnalysisConfig cfg;
    cfg.staticOracle.enabled = true;
    return cfg;
}

TEST(StaticOracle, ExactOnEveryStaticWorkloadWithZeroExtraExecutions)
{
    struct Expect
    {
        const char *name;
        Method method;
    };
    const Expect expected[] = {{"loopnest", Method::Symbolic},
                               {"stencil3", Method::Periodic},
                               {"matmul-tiled", Method::Counting}};
    for (const auto &e : expected) {
        auto w = workloads::create(e.name);
        ASSERT_NE(w, nullptr);
        auto run = core::analyzeWorkload(*w, oracleConfig());
        const StaticOracleReport &r = run.staticOracle;

        EXPECT_TRUE(r.applicable) << e.name;
        EXPECT_TRUE(r.checked) << e.name;
        EXPECT_TRUE(r.ok) << e.name
                          << (r.failures.empty() ? ""
                                                 : ": " + r.failures[0]);
        EXPECT_EQ(r.method, e.method) << e.name;
        EXPECT_TRUE(r.exact) << e.name;

        // Exact, not approximate: identical bins, zero divergence,
        // zero miss-curve error, clock-exact markers.
        EXPECT_TRUE(r.histogramIdentical) << e.name;
        EXPECT_EQ(r.histogramDivergence, 0.0) << e.name;
        EXPECT_EQ(r.maxMissRateError, 0.0) << e.name;
        EXPECT_TRUE(r.markersIdentical) << e.name;
        EXPECT_EQ(r.markerMaxError, 0u) << e.name;
        EXPECT_EQ(r.predictedAccesses, r.measuredAccesses) << e.name;
        EXPECT_EQ(r.predictedFootprint, r.measuredFootprint) << e.name;

        // The analysis itself costs one live training execution; the
        // oracle must add zero (it replays the recording).
        EXPECT_EQ(run.programExecutions, 1u) << e.name;
    }
}

TEST(StaticOracle, StencilAndMatmulWithinOnePercent)
{
    // The acceptance bound from the issue: <= 1% relative histogram
    // error on the stencil and tiled-matmul workloads. (The engines
    // are exact, so the measured divergence is 0 — the bound is the
    // contract, exactness the implementation.)
    for (const char *name : {"stencil3", "matmul-tiled"}) {
        auto w = workloads::create(name);
        auto run = core::analyzeWorkload(*w, oracleConfig());
        EXPECT_LE(run.staticOracle.histogramDivergence, 0.01) << name;
        EXPECT_TRUE(run.staticOracle.ok) << name;
    }
}

TEST(StaticOracle, FullEvaluationCarriesTheReport)
{
    auto w = workloads::create("loopnest");
    auto ev = core::evaluateWorkload(*w, oracleConfig());
    EXPECT_TRUE(ev.staticOracle.checked);
    EXPECT_TRUE(ev.staticOracle.ok);
    EXPECT_TRUE(ev.staticOracle.histogramIdentical);
    // Train + ref executions only; the oracle replays.
    EXPECT_EQ(ev.programExecutions, 2u);
}

TEST(StaticOracle, DisabledByDefault)
{
    auto w = workloads::create("loopnest");
    auto run = core::analyzeWorkload(*w, AnalysisConfig{});
    EXPECT_FALSE(run.staticOracle.checked);
    EXPECT_FALSE(run.staticOracle.applicable);
}

TEST(StaticOracle, NotApplicableToDynamicWorkloads)
{
    // tomcatv has no affine IR: the oracle must stay silent, not fail.
    auto w = workloads::create("tomcatv");
    auto run = core::analyzeWorkload(*w, oracleConfig());
    EXPECT_FALSE(run.staticOracle.applicable);
    EXPECT_FALSE(run.staticOracle.checked);
    EXPECT_EQ(run.programExecutions, 1u);
}

/** Prediction + measured pair for the comparison unit tests. */
struct ComparisonFixture
{
    staticloc::StaticPrediction prediction;
    core::MeasuredLocality measured;
};

ComparisonFixture
loopnestFixture()
{
    auto w = workloads::create("loopnest");
    auto *sd =
        dynamic_cast<const workloads::StaticallyDescribed *>(w.get());
    ComparisonFixture f;
    f.prediction = staticloc::predict(sd->loopProgram(w->trainInput()));
    // Use the prediction itself as the "measured" side: the exactness
    // of prediction-vs-replay is covered above; these tests exercise
    // the comparison logic.
    f.measured.histogram = f.prediction.histogram;
    f.measured.accesses = f.prediction.totalAccesses;
    f.measured.distinctElements = f.prediction.distinctElements;
    for (const auto &e : f.prediction.schedule) {
        f.measured.markerTimes.push_back(e.startAccess);
        f.measured.markerIds.push_back(e.marker);
    }
    return f;
}

TEST(CompareStaticOracle, FlagsHistogramDivergence)
{
    ComparisonFixture f = loopnestFixture();
    core::StaticOracleConfig cfg;
    // Corrupt the measured histogram: move some mass to a new bin.
    f.measured.histogram.add(3, 100);
    f.measured.accesses += 100;
    auto r = core::compareStaticOracle(f.prediction, f.measured, {},
                                       cfg);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.histogramIdentical);
    EXPECT_GT(r.histogramDivergence, 0.0);
    EXPECT_FALSE(r.failures.empty());
}

TEST(CompareStaticOracle, FlagsMarkerClockDrift)
{
    ComparisonFixture f = loopnestFixture();
    core::StaticOracleConfig cfg;
    f.measured.markerTimes.back() += 5;
    auto r = core::compareStaticOracle(f.prediction, f.measured, {},
                                       cfg);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.markersIdentical);
    EXPECT_EQ(r.markerMaxError, 5u);

    // The same drift passes under a loose bound — but is still
    // reported as non-identical.
    cfg.markerTolerance = 10;
    r = core::compareStaticOracle(f.prediction, f.measured, {}, cfg);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.markersIdentical);
}

TEST(CompareStaticOracle, MatchesDetectedBoundariesWithinSlack)
{
    ComparisonFixture f = loopnestFixture();
    core::StaticOracleConfig cfg;
    cfg.boundarySlack = 100;

    // Detected boundaries near predicted transitions: all matched.
    auto transitions = f.prediction.boundaryClocks();
    ASSERT_GE(transitions.size(), 2u);
    std::vector<uint64_t> detected{transitions[0] + 40,
                                   transitions[1] - 40};
    auto r = core::compareStaticOracle(f.prediction, f.measured,
                                       detected, cfg);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.detectedBoundaries, 2u);
    EXPECT_EQ(r.detectedBoundaryPrecision, 1.0);
    EXPECT_LE(r.detectedBoundaryMaxError, 40u);

    // One boundary far from every transition: flagged.
    detected.push_back(transitions[0] + 5000);
    r = core::compareStaticOracle(f.prediction, f.measured, detected,
                                  cfg);
    EXPECT_FALSE(r.ok);
    EXPECT_LT(r.detectedBoundaryPrecision, 1.0);
}

TEST(CompareStaticOracle, RequireDetectionFailsOnSilence)
{
    ComparisonFixture f = loopnestFixture();
    core::StaticOracleConfig cfg;
    // Default: a silent detector is recorded, not fatal (periodic
    // steady state has no rare events for the wavelet filter).
    auto r = core::compareStaticOracle(f.prediction, f.measured, {},
                                       cfg);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.detectedBoundaries, 0u);

    cfg.requireDetection = true;
    r = core::compareStaticOracle(f.prediction, f.measured, {}, cfg);
    EXPECT_FALSE(r.ok);
}

} // namespace
