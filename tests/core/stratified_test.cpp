/**
 * @file
 * Statistical and property suite for the stratified sampled evaluator:
 * quantile/selection/accumulator hand-checks, CI coverage at the
 * nominal level over seeded Monte Carlo trials, bit-identity to the
 * exhaustive pass at 100% sampling across pool sizes and frame
 * geometries, and fault injection (empty runs, single-execution
 * strata, phase drift, mismatched inputs) — a sampled evaluation may
 * fall back to exact measurement or widen its interval, but it must
 * never return a silently wrong answer.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/runtime.hpp"
#include "core/stratified.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"
#include "trace/memory_trace.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace lpp;
using lpp::core::StratifiedAccumulator;
using lpp::core::StratifiedSamplingConfig;
using lpp::trace::MemoryTrace;

// Quantiles -----------------------------------------------------------

TEST(StudentT, MatchesTableValues)
{
    // Two-sided 95%: t(1) = 12.706, t(2) = 4.303, t(10) = 2.228,
    // t(inf) = 1.960.
    EXPECT_NEAR(core::studentTQuantile(0.95, 1.0), 12.706, 0.01);
    EXPECT_NEAR(core::studentTQuantile(0.95, 2.0), 4.303, 0.01);
    EXPECT_NEAR(core::studentTQuantile(0.95, 10.0), 2.228, 0.03);
    EXPECT_NEAR(core::studentTQuantile(0.95, 1e9), 1.960, 0.001);
    EXPECT_NEAR(core::studentTQuantile(0.99, 5.0), 4.032, 0.05);
}

TEST(StudentT, MonotoneInDofAndConfidence)
{
    double prev = core::studentTQuantile(0.95, 1.0);
    for (double dof : {1.5, 2.0, 3.0, 5.0, 10.0, 30.0, 300.0}) {
        double q = core::studentTQuantile(0.95, dof);
        EXPECT_LT(q, prev) << "dof " << dof;
        EXPECT_GT(q, 1.9) << "dof " << dof;
        prev = q;
    }
    EXPECT_LT(core::studentTQuantile(0.90, 7.0),
              core::studentTQuantile(0.95, 7.0));
    EXPECT_LT(core::studentTQuantile(0.95, 7.0),
              core::studentTQuantile(0.99, 7.0));
}

// Selection -----------------------------------------------------------

TEST(StratifiedSelection, SeededDrawsAreDeterministicAndValid)
{
    auto a = core::sampleWithoutReplacement(7, 100, 10);
    auto b = core::sampleWithoutReplacement(7, 100, 10);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 10u);
    for (size_t i = 1; i < a.size(); ++i)
        EXPECT_LT(a[i - 1], a[i]); // sorted, distinct
    EXPECT_LT(a.back(), 100u);

    auto c = core::sampleWithoutReplacement(8, 100, 10);
    EXPECT_NE(a, c) << "different seeds must differ";

    auto all = core::sampleWithoutReplacement(7, 5, 9);
    EXPECT_EQ(all, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(StratifiedSelection, BalancedPicksNearestTheMean)
{
    // mean = 83.8; distances: 10->73.8, 100->16.2, 55->28.8,
    // 54->29.8, 200->116.2.
    std::vector<double> sizes{10, 100, 55, 54, 200};
    EXPECT_EQ(core::selectBalancedOnSize(sizes, 1),
              (std::vector<uint64_t>{1}));
    EXPECT_EQ(core::selectBalancedOnSize(sizes, 2),
              (std::vector<uint64_t>{1, 2}));
    EXPECT_EQ(core::selectBalancedOnSize(sizes, 3),
              (std::vector<uint64_t>{1, 2, 3}));
    EXPECT_EQ(core::selectBalancedOnSize(sizes, 9),
              (std::vector<uint64_t>{0, 1, 2, 3, 4}));
    // Ties break to the smaller size, then the earlier position.
    std::vector<double> tied{4, 6, 4, 6};
    EXPECT_EQ(core::selectBalancedOnSize(tied, 1),
              (std::vector<uint64_t>{0}));
}

// Accumulator ---------------------------------------------------------

TEST(StratifiedAccumulatorTest, ExactStrataCarryNoVariance)
{
    StratifiedAccumulator acc;
    acc.addExact(10.0);
    acc.addExact(5.5);
    EXPECT_DOUBLE_EQ(acc.total(), 15.5);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.halfWidth(0.95), 0.0);
}

TEST(StratifiedAccumulatorTest, MeanExpansionHandCase)
{
    // N = 4, samples {1, 3}: mean 2, total 8, s^2 = 2,
    // var = N^2 (1 - k/N) s^2 / k = 16 * 0.5 * 2 / 2 = 8, dof 1.
    StratifiedAccumulator acc;
    acc.addSampled(4, {1.0, 3.0});
    EXPECT_DOUBLE_EQ(acc.total(), 8.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 8.0);
    EXPECT_NEAR(acc.dof(), 1.0, 1e-12);
    EXPECT_NEAR(acc.halfWidth(0.95),
                core::studentTQuantile(0.95, 1.0) * std::sqrt(8.0),
                1e-9);
}

TEST(StratifiedAccumulatorTest, RatioEstimatorHandCase)
{
    // N = 3, access total 60, sampled (y, x) = {(2,10), (3,20)}:
    // R = 5/30, total = 60R = 10. Residuals e = y - Rx = {1/3, -1/3},
    // s_e^2 = 2/9, var = N^2 (1 - k/N) s_e^2 / k = 9 * (1/3) * (2/9)
    // / 2 = 1/3.
    StratifiedAccumulator acc;
    acc.addRatio(3, 60.0, {{2.0, 10.0}, {3.0, 20.0}});
    EXPECT_NEAR(acc.total(), 10.0, 1e-12);
    EXPECT_NEAR(acc.variance(), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(acc.dof(), 1.0, 1e-12);
}

TEST(StratifiedAccumulatorTest, ExternalEstimatesPoolTheirDof)
{
    // Two external estimates of var 4 at 2 dof each: variance adds,
    // Welch-Satterthwaite dof = 64 / (16/2 + 16/2) = 4.
    StratifiedAccumulator acc;
    acc.addEstimate(10.0, 4.0, 2.0);
    acc.addEstimate(10.0, 4.0, 2.0);
    EXPECT_DOUBLE_EQ(acc.total(), 20.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 8.0);
    EXPECT_NEAR(acc.dof(), 4.0, 1e-12);
}

TEST(StratifiedAccumulatorTest, CoverageMeetsNominalOverSeededTrials)
{
    // Three strata of known totals; every trial draws a fresh seeded
    // SRS per stratum, feeds the ratio estimator, and checks whether
    // the 95% interval covers the true total. Coverage over the 200
    // deterministic trials must reach the nominal level.
    struct Pop
    {
        std::vector<double> x, y;
        double xTotal = 0.0, yTotal = 0.0;
    };
    std::vector<Pop> pops;
    SplitMix64 gen(0xc0ffee);
    auto uniform = [&gen] {
        return static_cast<double>(gen.next() >> 11) / 9007199254740992.0;
    };
    for (size_t n : {50, 30, 40}) {
        Pop p;
        double rate = 0.2 + 0.2 * uniform();
        for (size_t i = 0; i < n; ++i) {
            double x = 500.0 + 1500.0 * uniform();
            // Heteroscedastic residuals proportional to sqrt(x), the
            // quasi-Poisson shape the estimator models.
            double e = (uniform() + uniform() + uniform() - 1.5) *
                       std::sqrt(x);
            double y = std::max(0.0, rate * x + e);
            p.x.push_back(x);
            p.y.push_back(y);
            p.xTotal += x;
            p.yTotal += y;
        }
        pops.push_back(std::move(p));
    }

    const int trials = 200;
    int covered = 0;
    for (int t = 0; t < trials; ++t) {
        StratifiedAccumulator acc;
        double truth = 0.0;
        for (size_t s = 0; s < pops.size(); ++s) {
            const Pop &p = pops[s];
            uint64_t n = p.x.size();
            uint64_t k = n / 4;
            auto picks = core::sampleWithoutReplacement(
                0x5eed0000 + 131 * t + s, n, k);
            std::vector<std::pair<double, double>> pairs;
            for (uint64_t idx : picks)
                pairs.push_back({p.y[idx], p.x[idx]});
            acc.addRatio(n, p.xTotal, pairs);
            truth += p.yTotal;
        }
        double hw = acc.halfWidth(0.95);
        covered += std::abs(acc.total() - truth) <= hw ? 1 : 0;
    }
    EXPECT_GE(covered, static_cast<int>(trials * 0.95))
        << "coverage " << covered << "/" << trials;
}

// Synthetic phased runs ----------------------------------------------

/**
 * Emit one phase execution: `batches` batches of 32 accesses over a
 * working set of `ws` elements starting at `base`, with a stride walk
 * so reuse distances vary by phase. Markers are emitted between
 * batches only — execution boundaries always land on event boundaries.
 */
void
emitExecution(trace::TraceSink &sink, uint32_t phase, uint64_t base,
              uint64_t ws, uint64_t batches, SplitMix64 &gen)
{
    sink.onPhaseMarker(phase);
    std::vector<trace::Addr> batch;
    for (uint64_t b = 0; b < batches; ++b) {
        sink.onBlock(static_cast<trace::BlockId>(phase * 7 + b % 5),
                     4 + phase);
        batch.clear();
        for (size_t i = 0; i < 32; ++i) {
            uint64_t e = gen.next() % ws;
            batch.push_back(8 * (base + e));
        }
        sink.onAccessBatch(batch.data(), batch.size());
    }
}

struct PhaseSpec
{
    uint32_t phase;
    uint64_t executions;
    uint64_t ws;         //!< working-set elements
    uint64_t minBatches; //!< per-execution length floor (32/batch)
    uint64_t jitter;     //!< extra batches, seeded
};

/** Record a phased run and its instrumented replay. */
std::pair<MemoryTrace, core::Replay>
makePhasedRun(uint64_t seed, const std::vector<PhaseSpec> &specs,
              uint64_t frame_target = 0)
{
    MemoryTrace t;
    if (frame_target)
        t.setFrameTargetAccesses(frame_target);
    SplitMix64 gen(seed);
    // A short un-phased prologue, like real instrumented runs.
    std::vector<trace::Addr> pre;
    for (size_t i = 0; i < 24; ++i)
        pre.push_back(8 * i);
    t.onBlock(0, 3);
    t.onAccessBatch(pre.data(), pre.size());
    // Round-robin executions across the phases.
    uint64_t maxExec = 0;
    for (const auto &s : specs)
        maxExec = std::max(maxExec, s.executions);
    for (uint64_t e = 0; e < maxExec; ++e)
        for (const auto &s : specs)
            if (e < s.executions)
                emitExecution(t, s.phase, 1000 + 10000 * s.phase, s.ws,
                              s.minBatches + gen.next() % (s.jitter + 1),
                              gen);
    t.onEnd();

    core::ExecutionCollector collector;
    t.replay(collector);
    return {std::move(t), collector.replay()};
}

// Planning ------------------------------------------------------------

TEST(StratifiedPlan, StrataGroupByPhaseWithCertaintyFirstExecution)
{
    auto [t, replay] = makePhasedRun(
        3, {{0, 6, 64, 4, 2}, {1, 9, 256, 6, 2}, {2, 1, 32, 3, 0}});
    StratifiedSamplingConfig cfg;
    auto strata = core::planStrata(replay, cfg);
    ASSERT_GE(strata.size(), 3u);
    // The run's first execution is split into its own certainty unit.
    EXPECT_TRUE(strata.front().certainty);
    EXPECT_EQ(strata.front().executions.size(), 1u);
    EXPECT_EQ(strata.front().executions[0], 0u);
    size_t total = 0;
    for (const auto &st : strata)
        total += st.executions.size();
    EXPECT_EQ(total, replay.executions.size());
}

TEST(StratifiedPlan, LargePhasesSubstratifyBySizeClass)
{
    // One phase with plenty of executions spanning two size octaves.
    auto [t, replay] =
        makePhasedRun(11, {{0, 48, 128, 2, 10}});
    StratifiedSamplingConfig cfg;
    cfg.sizeStratifyMin = 32;
    auto strata = core::planStrata(replay, cfg);
    size_t classes = 0;
    for (const auto &st : strata)
        classes += st.sizeClass != 0 && !st.certainty;
    EXPECT_GE(classes, 2u) << "expected log2 size substratification";

    cfg.sizeStratifyMin = 0; // disabled: one stratum per phase + unit
    EXPECT_EQ(core::planStrata(replay, cfg).size(), 2u);
}

// Property: 100% sampling is the exhaustive pass -----------------------

TEST(StratifiedProperty, FullSamplingBitIdenticalAcrossPoolsAndFrames)
{
    std::vector<PhaseSpec> specs{
        {0, 7, 64, 3, 3}, {1, 12, 512, 5, 4}, {2, 5, 96, 2, 1}};
    const core::StratifiedEstimate *first = nullptr;
    core::StratifiedEstimate firstStore;
    for (uint64_t frameTarget : {0ull, 256ull, 1021ull}) {
        auto [t, replay] = makePhasedRun(17, specs, frameTarget);
        for (size_t threads : {1u, 2u, 4u}) {
            support::ThreadPool pool(threads);
            StratifiedSamplingConfig cfg;
            cfg.enabled = true;
            cfg.sampleFraction = 1.0; // k = N everywhere
            cfg.verifyAgainstExact = true;
            core::StratifiedEvaluator ev(cfg, &pool);
            auto rep = ev.evaluate(t, replay);
            ASSERT_TRUE(rep.ran);
            EXPECT_FALSE(rep.sampled);
            ASSERT_TRUE(rep.verified);
            EXPECT_TRUE(rep.comparison.ok);
            EXPECT_EQ(rep.comparison.maxAbsMissRateError, 0.0);
            EXPECT_EQ(rep.estimate.missTotal, rep.exact.missTotal);
            EXPECT_EQ(rep.estimate.histogramBins,
                      rep.exact.histogramBins);
            EXPECT_EQ(rep.estimate.histogramInfinite,
                      rep.exact.histogramInfinite);
            EXPECT_EQ(rep.estimate.footprintSum, rep.exact.footprintSum);
            EXPECT_EQ(rep.estimate.bbv, rep.exact.bbv);
            for (const auto &st : rep.strata)
                EXPECT_TRUE(st.exact);
            // And bit-identical across every pool size and frame
            // geometry: the recording's framing must not leak into
            // the estimate.
            if (!first) {
                firstStore = rep.estimate;
                first = &firstStore;
            } else {
                EXPECT_EQ(rep.estimate.missTotal, first->missTotal)
                    << "frames " << frameTarget << " threads "
                    << threads;
                EXPECT_EQ(rep.estimate.histogramBins,
                          first->histogramBins);
                EXPECT_EQ(rep.estimate.bbv, first->bbv);
                EXPECT_EQ(rep.estimate.footprintSum,
                          first->footprintSum);
            }
        }
    }
}

TEST(StratifiedProperty, SampledRunsAreDeterministicAcrossPools)
{
    std::vector<PhaseSpec> specs{{0, 40, 128, 2, 6}, {1, 25, 512, 3, 4}};
    auto [t, replay] = makePhasedRun(29, specs);
    StratifiedSamplingConfig cfg;
    cfg.enabled = true;
    cfg.verifyAgainstExact = true;
    // The synthetic phases draw addresses at random, so per-execution
    // miss counts are far noisier than the real workloads' — this
    // test pins determinism, not the production bound.
    cfg.errorBound = 0.05;
    core::StratifiedEvalReport base;
    for (size_t threads : {1u, 2u, 4u}) {
        support::ThreadPool pool(threads);
        core::StratifiedEvaluator ev(cfg, &pool);
        auto rep = ev.evaluate(t, replay);
        ASSERT_TRUE(rep.sampled);
        EXPECT_TRUE(rep.comparison.ok)
            << rep.comparison.maxRelMissRateError;
        if (threads == 1u) {
            base = rep;
        } else {
            EXPECT_EQ(rep.estimate.missTotal, base.estimate.missTotal);
            EXPECT_EQ(rep.estimate.missHalfWidth,
                      base.estimate.missHalfWidth);
            EXPECT_EQ(rep.estimate.measuredAccesses,
                      base.estimate.measuredAccesses);
        }
    }
}

// Fault injection -----------------------------------------------------

TEST(StratifiedFaults, EmptyRunEvaluatesGracefully)
{
    MemoryTrace t;
    core::Replay replay;
    StratifiedSamplingConfig cfg;
    cfg.enabled = true;
    cfg.verifyAgainstExact = true;
    core::StratifiedEvaluator ev(cfg);
    auto rep = ev.evaluate(t, replay);
    EXPECT_TRUE(rep.ran);
    EXPECT_FALSE(rep.sampled);
    EXPECT_TRUE(rep.verified);
    EXPECT_TRUE(rep.comparison.ok);
}

TEST(StratifiedFaults, SingleExecutionStrataFallBackToExact)
{
    // Every phase runs once: sampling is impossible, and the answer
    // must be the exhaustive one, not a fabricated extrapolation.
    auto [t, replay] =
        makePhasedRun(41, {{0, 1, 64, 4, 0}, {1, 1, 128, 5, 0}});
    StratifiedSamplingConfig cfg;
    cfg.enabled = true;
    cfg.verifyAgainstExact = true;
    core::StratifiedEvaluator ev(cfg);
    auto rep = ev.evaluate(t, replay);
    EXPECT_FALSE(rep.sampled);
    for (const auto &st : rep.strata)
        EXPECT_TRUE(st.exact);
    EXPECT_EQ(rep.comparison.maxAbsMissRateError, 0.0);
    for (uint32_t w = 1; w <= cache::simWays; ++w)
        EXPECT_EQ(rep.estimate.missRateHalfWidth(w), 0.0);
}

TEST(StratifiedFaults, PhaseDriftWidensTheInterval)
{
    // Stable phase: every execution touches the same working set.
    // Drifting phase: the working set grows across executions, so
    // per-execution miss ratios drift. Same sampling effort — the
    // drifting run must confess with a wider interval, never a
    // silently wrong point estimate.
    auto [stableT, stableR] = makePhasedRun(53, {{0, 24, 128, 4, 0}});

    MemoryTrace driftT;
    SplitMix64 gen(53);
    std::vector<trace::Addr> pre{8, 16, 24};
    driftT.onBlock(0, 3);
    driftT.onAccessBatch(pre.data(), pre.size());
    for (uint64_t e = 0; e < 24; ++e)
        emitExecution(driftT, 0, 1000, 16 + 40 * e, 4, gen);
    driftT.onEnd();
    core::ExecutionCollector c;
    driftT.replay(c);

    StratifiedSamplingConfig cfg;
    cfg.enabled = true;
    cfg.verifyAgainstExact = true;
    cfg.sizeStratifyMin = 0; // keep each run one stratum
    cfg.selection = core::StratifiedSelection::SeededRandom;
    core::StratifiedEvaluator ev(cfg);
    auto stable = ev.evaluate(stableT, stableR);
    auto drift = ev.evaluate(driftT, c.replay());
    ASSERT_TRUE(stable.sampled);
    ASSERT_TRUE(drift.sampled);

    double stableHw = 0.0, driftHw = 0.0;
    for (uint32_t w = 1; w <= cache::simWays; ++w) {
        stableHw = std::max(stableHw, stable.estimate.missRateHalfWidth(w));
        driftHw = std::max(driftHw, drift.estimate.missRateHalfWidth(w));
    }
    EXPECT_GT(driftHw, 2.0 * stableHw)
        << "drift " << driftHw << " vs stable " << stableHw;
}

TEST(StratifiedDeathTest, MismatchedTraceAndReplayPanic)
{
    auto [t, replay] = makePhasedRun(61, {{0, 4, 64, 3, 1}});
    auto [t2, replay2] = makePhasedRun(62, {{0, 6, 64, 4, 1}});
    StratifiedSamplingConfig cfg;
    cfg.enabled = true;
    core::StratifiedEvaluator ev(cfg);
    EXPECT_DEATH((void)ev.evaluate(t, replay2),
                 "instrumented replay");
    (void)t2;
}

// Real workloads: the verified bound ----------------------------------

/**
 * The compareToExact bound must hold on every registry workload. One
 * stratified+verified evaluation per workload, shared across
 * assertions (the pipeline run is the expensive part).
 */
class StratifiedWorkload : public ::testing::TestWithParam<std::string>
{
  protected:
    static const core::WorkloadEvaluation &
    eval(const std::string &name)
    {
        static std::map<std::string, core::WorkloadEvaluation> cache;
        auto it = cache.find(name);
        if (it == cache.end()) {
            auto w = workloads::create(name);
            core::AnalysisConfig cfg;
            cfg.stratifiedSampling.enabled = true;
            cfg.stratifiedSampling.verifyAgainstExact = true;
            it = cache.emplace(name, core::evaluateWorkload(*w, cfg))
                     .first;
        }
        return it->second;
    }
};

TEST_P(StratifiedWorkload, ErrorBoundHolds)
{
    const auto &rep = eval(GetParam()).stratified;
    ASSERT_TRUE(rep.ran);
    ASSERT_TRUE(rep.verified);
    EXPECT_TRUE(rep.sampled);
    EXPECT_TRUE(rep.comparison.ok)
        << "max relative miss-rate error "
        << rep.comparison.maxRelMissRateError;
    EXPECT_LT(rep.comparison.maxRelMissRateError, 0.01);
    EXPECT_GT(rep.estimate.totalAccesses, 0u);
    EXPECT_LT(rep.estimate.measuredAccesses, rep.estimate.totalAccesses);
}

TEST_P(StratifiedWorkload, ReportIsInternallyConsistent)
{
    const auto &rep = eval(GetParam()).stratified;
    uint64_t execs = 0, sampledExecs = 0, accesses = 0;
    for (const auto &st : rep.strata) {
        EXPECT_LE(st.sampled, st.executions);
        EXPECT_EQ(st.exact, st.sampled == st.executions);
        execs += st.executions;
        sampledExecs += st.sampled;
        accesses += st.accesses;
    }
    EXPECT_EQ(execs, rep.estimate.totalExecutions);
    EXPECT_GE(sampledExecs, rep.strata.size()); // >= 1 per stratum
    EXPECT_EQ(accesses + rep.prologueAccesses,
              rep.estimate.totalAccesses);
    EXPECT_GT(rep.sampledFraction(), 0.0);
    EXPECT_LT(rep.sampledFraction(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, StratifiedWorkload,
    ::testing::ValuesIn(workloads::allNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
