/**
 * @file
 * Determinism contract of the parallel evaluation sweep: for every
 * registered workload, core::evaluateWorkloads must return results
 * field-identical to serial core::evaluateWorkload, independent of
 * thread count and scheduling.
 */

#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "workloads/registry.hpp"

namespace {

using lpp::core::GranularityRow;
using lpp::core::WorkloadEvaluation;

void
expectSameRow(const GranularityRow &a, const GranularityRow &b,
              const std::string &what)
{
    EXPECT_EQ(a.leafExecutions, b.leafExecutions) << what;
    EXPECT_EQ(a.execLengthM, b.execLengthM) << what;
    EXPECT_EQ(a.avgLeafSizeM, b.avgLeafSizeM) << what;
    EXPECT_EQ(a.avgLargestCompositeM, b.avgLargestCompositeM) << what;
}

void
expectSameEvaluation(const WorkloadEvaluation &serial,
                     const WorkloadEvaluation &parallel)
{
    const std::string &n = serial.name;
    EXPECT_EQ(serial.name, parallel.name);
    EXPECT_EQ(serial.metrics.strictAccuracy, parallel.metrics.strictAccuracy)
        << n;
    EXPECT_EQ(serial.metrics.strictCoverage, parallel.metrics.strictCoverage)
        << n;
    EXPECT_EQ(serial.metrics.relaxedAccuracy,
              parallel.metrics.relaxedAccuracy)
        << n;
    EXPECT_EQ(serial.metrics.relaxedCoverage,
              parallel.metrics.relaxedCoverage)
        << n;
    expectSameRow(serial.detectionRow, parallel.detectionRow,
                  n + " detection row");
    expectSameRow(serial.predictionRow, parallel.predictionRow,
                  n + " prediction row");
    EXPECT_EQ(serial.localityStddev, parallel.localityStddev) << n;
    EXPECT_EQ(serial.trainOverlap.recall, parallel.trainOverlap.recall) << n;
    EXPECT_EQ(serial.trainOverlap.precision, parallel.trainOverlap.precision)
        << n;
    EXPECT_EQ(serial.refOverlap.recall, parallel.refOverlap.recall) << n;
    EXPECT_EQ(serial.refOverlap.precision, parallel.refOverlap.precision)
        << n;
    EXPECT_EQ(serial.train.replay.sequence(), parallel.train.replay.sequence())
        << n;
    EXPECT_EQ(serial.ref.replay.sequence(), parallel.ref.replay.sequence())
        << n;
    EXPECT_EQ(serial.train.manualTimes, parallel.train.manualTimes) << n;
    EXPECT_EQ(serial.ref.manualTimes, parallel.ref.manualTimes) << n;
}

TEST(ParallelEvaluation, MatchesSerialForEveryWorkload)
{
    auto names = lpp::workloads::allNames();
    ASSERT_FALSE(names.empty());

    std::vector<WorkloadEvaluation> serial;
    for (const auto &name : names) {
        auto w = lpp::workloads::create(name);
        ASSERT_NE(w, nullptr) << name;
        serial.push_back(lpp::core::evaluateWorkload(*w));
    }

    auto parallel = lpp::core::evaluateWorkloads(names);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i)
        expectSameEvaluation(serial[i], parallel[i]);
}

TEST(ParallelEvaluation, ResultOrderFollowsNameOrder)
{
    auto names = lpp::workloads::allNames();
    // Reverse the request order: results must follow it exactly.
    std::vector<std::string> reversed(names.rbegin(), names.rend());
    auto evals = lpp::core::evaluateWorkloads(reversed);
    ASSERT_EQ(evals.size(), reversed.size());
    for (size_t i = 0; i < evals.size(); ++i)
        EXPECT_EQ(evals[i].name, reversed[i]);
}

} // namespace
