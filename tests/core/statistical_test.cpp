#include <gtest/gtest.h>

#include "core/statistical.hpp"
#include "support/random.hpp"

namespace {

using namespace lpp::core;

TEST(StatisticalPredictor, NoPredictionBeforeMinObservations)
{
    StatisticalPredictor p;
    for (int i = 0; i < 4; ++i)
        p.observe(0, 1000);
    EXPECT_FALSE(p.predict(0, nullptr));
    p.observe(0, 1000);
    EXPECT_TRUE(p.predict(0, nullptr));
    EXPECT_EQ(p.observationCount(0), 5u);
}

TEST(StatisticalPredictor, ConstantLengthsGivePointBand)
{
    StatisticalPredictor p;
    for (int i = 0; i < 10; ++i)
        p.observe(1, 5000);
    StatisticalPredictor::Band band;
    ASSERT_TRUE(p.predict(1, &band));
    EXPECT_EQ(band.low, 5000u);
    EXPECT_EQ(band.high, 5000u);
    EXPECT_DOUBLE_EQ(band.mean, 5000.0);
    EXPECT_DOUBLE_EQ(band.relativeWidth(), 0.0);
    EXPECT_TRUE(band.contains(5000));
    EXPECT_FALSE(band.contains(5001));
}

TEST(StatisticalPredictor, QuantilesBoundTheBulk)
{
    // Uniform lengths in [1000, 2000]: the 10-90 band excludes the
    // extreme tails but contains ~80% of fresh draws.
    lpp::Rng rng(91);
    StatisticalPredictor p;
    for (int i = 0; i < 500; ++i)
        p.observe(2, 1000 + rng.below(1001));
    StatisticalPredictor::Band band;
    ASSERT_TRUE(p.predict(2, &band));
    EXPECT_NEAR(static_cast<double>(band.low), 1100.0, 40.0);
    EXPECT_NEAR(static_cast<double>(band.high), 1900.0, 40.0);

    int hits = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i)
        hits += band.contains(1000 + rng.below(1001));
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.8, 0.04);
}

TEST(StatisticalPredictor, PhasesAreIndependent)
{
    StatisticalPredictor p;
    for (int i = 0; i < 6; ++i) {
        p.observe(0, 100);
        p.observe(1, 900000);
    }
    StatisticalPredictor::Band a, b;
    ASSERT_TRUE(p.predict(0, &a));
    ASSERT_TRUE(p.predict(1, &b));
    EXPECT_LT(a.high, b.low);
}

TEST(EvaluateStatistical, PerfectOnRepeatingPhases)
{
    Replay r;
    r.totalInstructions = 0;
    for (int i = 0; i < 50; ++i) {
        ExecutionRecord e;
        e.phase = 0;
        e.instructions = 7777;
        r.executions.push_back(e);
        r.totalInstructions += e.instructions;
    }
    auto m = evaluateStatisticalPrediction(r);
    EXPECT_EQ(m.predictions, 45u); // after 5 warm-up observations
    EXPECT_DOUBLE_EQ(m.hitRate, 1.0);
    EXPECT_NEAR(m.coverage, 45.0 / 50.0, 1e-12);
    EXPECT_DOUBLE_EQ(m.meanRelativeWidth, 0.0);
}

TEST(EvaluateStatistical, GccLikeHeavyTailGetsUsefulBands)
{
    // Exact-match prediction is hopeless on heavy-tailed lengths, but
    // the band predictor should land its configured ~80%.
    lpp::Rng rng(93);
    Replay r;
    for (int i = 0; i < 400; ++i) {
        ExecutionRecord e;
        e.phase = static_cast<lpp::trace::PhaseId>(i % 3);
        double u = rng.uniform();
        e.instructions = static_cast<uint64_t>(
            400.0 / std::pow(1.0 - u * 0.97, 0.8));
        r.executions.push_back(e);
        r.totalInstructions += e.instructions;
    }
    auto m = evaluateStatisticalPrediction(r);
    EXPECT_GT(m.predictions, 300u);
    EXPECT_GT(m.hitRate, 0.6);
    EXPECT_LT(m.hitRate, 0.95);
    EXPECT_GT(m.meanRelativeWidth, 0.5) << "bands must be honest: wide";
}

TEST(EvaluateStatistical, EmptyReplay)
{
    Replay r;
    auto m = evaluateStatisticalPrediction(r);
    EXPECT_EQ(m.predictions, 0u);
    EXPECT_DOUBLE_EQ(m.hitRate, 0.0);
}

TEST(StatisticalPredictorDeathTest, RejectsBadQuantiles)
{
    StatisticalPredictor::Config cfg;
    cfg.lowQuantile = 0.9;
    cfg.highQuantile = 0.1;
    EXPECT_DEATH(StatisticalPredictor p(cfg), "quantiles");
}

} // namespace
