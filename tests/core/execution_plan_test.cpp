/**
 * @file
 * ExecutionPlan contract: passes sharing a key coalesce into one
 * execution, dependencies split and order executions, steps hand data
 * between stages, failures abandon dependents only, and parallel
 * scheduling is observationally identical to serial.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/execution_plan.hpp"
#include "support/thread_pool.hpp"
#include "trace/sink.hpp"
#include "workloads/registry.hpp"

namespace {

using lpp::core::ExecutionPlan;
using lpp::trace::Addr;

/** Counts deliveries and logs a tag on end. */
class TagSink : public lpp::trace::TraceSink
{
  public:
    TagSink(std::string tag_, std::vector<std::string> *ends_ = nullptr)
        : tag(std::move(tag_)), ends(ends_)
    {
    }

    void onAccess(Addr) override { ++accesses; }

    void
    onAccessBatch(const Addr *, size_t n) override
    {
        accesses += n;
    }

    void
    onEnd() override
    {
        ++endCount;
        if (ends != nullptr)
            ends->push_back(tag);
    }

    std::string tag;
    std::vector<std::string> *ends;
    uint64_t accesses = 0;
    int endCount = 0;
};

/** @return a contract-clean runner emitting `n` accesses. */
ExecutionPlan::Runner
emitRunner(std::atomic<int> *runs, size_t n = 16)
{
    return [runs, n](lpp::trace::TraceSink &sink) {
        if (runs != nullptr)
            ++*runs;
        sink.onBlock(0, 10);
        for (size_t i = 0; i < n; ++i)
            sink.onAccess(static_cast<Addr>(i * 8));
        sink.onEnd();
    };
}

TEST(ExecutionPlan, CoalescesPassesSharingAKey)
{
    std::atomic<int> runs{0};
    std::vector<std::string> ends;
    TagSink a("a", &ends), b("b", &ends);

    ExecutionPlan plan;
    plan.addPass("w@1", emitRunner(&runs), [&] { return &a; });
    plan.addPass("w@1", emitRunner(&runs), [&] { return &b; });
    plan.run();

    EXPECT_EQ(runs.load(), 1);
    EXPECT_EQ(a.accesses, 16u);
    EXPECT_EQ(b.accesses, 16u);
    // Fanout attaches member sinks in registration order.
    EXPECT_EQ(ends, (std::vector<std::string>{"a", "b"}));

    const auto &st = plan.stats();
    EXPECT_EQ(st.passes, 2u);
    EXPECT_EQ(st.programExecutions, 1u);
    EXPECT_EQ(st.coalescedPasses, 1u);
    EXPECT_EQ(plan.programExecutions("w@"), 1u);
}

TEST(ExecutionPlan, DistinctKeysRunSeparately)
{
    std::atomic<int> runs{0};
    TagSink a("a"), b("b");

    ExecutionPlan plan;
    plan.addPass("w@1", emitRunner(&runs), [&] { return &a; });
    plan.addPass("w@2", emitRunner(&runs), [&] { return &b; });
    plan.run();

    EXPECT_EQ(runs.load(), 2);
    EXPECT_EQ(plan.stats().programExecutions, 2u);
    EXPECT_EQ(plan.stats().coalescedPasses, 0u);
    EXPECT_EQ(plan.programExecutions("w@1"), 1u);
    EXPECT_EQ(plan.programExecutions("w@"), 2u);
}

TEST(ExecutionPlan, DependentSameKeyPassesSplitIntoTwoExecutions)
{
    std::atomic<int> runs{0};
    TagSink a("a"), b("b");
    bool stepRan = false;

    ExecutionPlan plan;
    auto p1 = plan.addPass("w@1", emitRunner(&runs), [&] { return &a; });
    auto s = plan.addStep([&] { stepRan = true; }, {p1});
    plan.addPass("w@1", emitRunner(&runs),
                 [&]() -> lpp::trace::TraceSink * {
                     // Built only after the step completed.
                     EXPECT_TRUE(stepRan);
                     return &b;
                 },
                 {s});
    plan.run();

    EXPECT_EQ(runs.load(), 2);
    EXPECT_TRUE(stepRan);
    EXPECT_EQ(plan.stats().programExecutions, 2u);
    EXPECT_EQ(plan.stats().coalescedPasses, 0u);
    EXPECT_EQ(plan.stats().steps, 1u);
}

TEST(ExecutionPlan, MergingNeverCreatesCyclesBetweenExecutions)
{
    // A(K), C(L, after A), D(L), B(K, after D): merging both groups
    // fully would deadlock (K-unit needs D, L-unit needs A). The
    // planner must split one group. A run() that returns proves the
    // schedule stayed acyclic.
    std::atomic<int> runs{0};
    TagSink a("a"), b("b"), c("c"), d("d");

    ExecutionPlan plan;
    auto pa = plan.addPass("K", emitRunner(&runs), [&] { return &a; });
    plan.addPass("L", emitRunner(&runs), [&] { return &c; }, {pa});
    auto pd = plan.addPass("L", emitRunner(&runs), [&] { return &d; });
    plan.addPass("K", emitRunner(&runs), [&] { return &b; }, {pd});
    plan.run();

    EXPECT_EQ(plan.stats().passes, 4u);
    // K coalesces {A, B}; L must stay split.
    EXPECT_EQ(plan.stats().programExecutions, 3u);
    EXPECT_EQ(plan.stats().coalescedPasses, 1u);
    for (const TagSink *s : {&a, &b, &c, &d})
        EXPECT_EQ(s->endCount, 1) << s->tag;
}

TEST(ExecutionPlan, ReplaysCountSeparatelyAndNeverCoalesceWithLive)
{
    std::atomic<int> runs{0};
    TagSink live("live"), replayed("replayed");

    ExecutionPlan plan;
    plan.addPass("w@1", emitRunner(&runs), [&] { return &live; });
    plan.addPass("w@1", emitRunner(&runs), [&] { return &replayed; }, {},
                 {.replay = true});
    plan.run();

    EXPECT_EQ(runs.load(), 2);
    EXPECT_EQ(plan.stats().programExecutions, 1u);
    EXPECT_EQ(plan.stats().replayExecutions, 1u);
    // Replays do not count as program executions.
    EXPECT_EQ(plan.programExecutions("w@"), 1u);
}

TEST(ExecutionPlan, StepsHandDataBetweenStages)
{
    // Precount-shaped flow: pass 1 measures, a step derives a value,
    // pass 2's sink factory consumes it lazily.
    TagSink meter("meter"), consumer("consumer");
    uint64_t derived = 0;

    ExecutionPlan plan;
    auto p1 = plan.addPass("w@1", emitRunner(nullptr, 32),
                           [&] { return &meter; });
    auto s = plan.addStep([&] { derived = meter.accesses * 2; }, {p1});
    plan.addPass("w@2", emitRunner(nullptr),
                 [&]() -> lpp::trace::TraceSink * {
                     EXPECT_EQ(derived, 64u);
                     return &consumer;
                 },
                 {s});
    plan.run();

    EXPECT_EQ(derived, 64u);
    EXPECT_EQ(consumer.endCount, 1);
}

TEST(ExecutionPlan, FailureAbandonsDependentsButRunsTheRest)
{
    lpp::support::ThreadPool pool(4);
    for (int trial = 0; trial < 2; ++trial) {
        TagSink survivor("survivor"), dependentSink("dep");
        bool dependentStepRan = false;

        ExecutionPlan plan;
        auto bad = plan.addPass(
            "bad@1",
            [](lpp::trace::TraceSink &) {
                throw std::runtime_error("execution failed");
            },
            [&]() -> lpp::trace::TraceSink * { return &dependentSink; });
        plan.addStep([&] { dependentStepRan = true; }, {bad});
        plan.addPass("good@1", emitRunner(nullptr),
                     [&] { return &survivor; });

        // Trial 0 exercises the parallel scheduler, trial 1 the serial
        // one (shared() may be single-threaded; use explicit pools).
        if (trial == 0)
            EXPECT_THROW(plan.run(pool), std::runtime_error);
        else {
            lpp::support::ThreadPool serial(1);
            EXPECT_THROW(plan.run(serial), std::runtime_error);
        }
        EXPECT_FALSE(dependentStepRan);
        EXPECT_EQ(survivor.endCount, 1);
    }
}

TEST(ExecutionPlan, ParallelSchedulingMatchesSerial)
{
    // Diamond per "workload": one base execution feeding two steps
    // feeding a join step; eight independent diamonds.
    auto build = [](ExecutionPlan &plan, std::vector<uint64_t> &out,
                    std::vector<TagSink> &sinks) {
        out.assign(8, 0);
        sinks.reserve(8);
        for (int w = 0; w < 8; ++w) {
            sinks.emplace_back("w" + std::to_string(w));
            TagSink *sink = &sinks.back();
            uint64_t *slot = &out[w];
            auto base = plan.addPass("w" + std::to_string(w) + "@1",
                                     emitRunner(nullptr, 8 + w),
                                     [sink] { return sink; });
            auto left = plan.addStep([slot, sink] { *slot += sink->accesses; },
                                     {base});
            auto right = plan.addStep([slot] { *slot += 1000; }, {base});
            plan.addStep([slot] { *slot *= 3; }, {left, right});
        }
    };

    std::vector<uint64_t> serialOut, parallelOut;
    std::vector<TagSink> serialSinks, parallelSinks;
    {
        ExecutionPlan plan;
        build(plan, serialOut, serialSinks);
        lpp::support::ThreadPool serial(1);
        plan.run(serial);
    }
    {
        ExecutionPlan plan;
        build(plan, parallelOut, parallelSinks);
        lpp::support::ThreadPool pool(4);
        plan.run(pool);
    }
    EXPECT_EQ(serialOut, parallelOut);
    for (int w = 0; w < 8; ++w)
        EXPECT_EQ(serialOut[w], (8u + w + 1000u) * 3u);
}

TEST(ExecutionPlanDeathTest, RunIsOneShotAndStatsQueriesNeedARun)
{
    ExecutionPlan plan;
    TagSink a("a");
    plan.addPass("w@1", emitRunner(nullptr), [&] { return &a; });
    EXPECT_DEATH(plan.programExecutions("w@"), "before run");
    lpp::support::ThreadPool serial(1);
    plan.run(serial);
    EXPECT_DEATH(plan.run(serial), "already ran");
}

TEST(ExecutionPlan, WorkloadKeyIdentifiesProgramAndInput)
{
    auto w = lpp::workloads::create("gcc");
    ASSERT_NE(w, nullptr);
    auto train = lpp::core::workloadKey(*w, w->trainInput());
    auto ref = lpp::core::workloadKey(*w, w->refInput());
    EXPECT_EQ(train.rfind("gcc@", 0), 0u);
    EXPECT_NE(train, ref);
    EXPECT_EQ(train, lpp::core::workloadKey(*w, w->trainInput()));
}

} // namespace
