#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "core/persistence.hpp"
#include "core/runtime.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace lpp;

class PersistenceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("lpp_persist_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir);
    }

    void TearDown() override { std::filesystem::remove_all(dir); }

    std::string
    path(const std::string &name) const
    {
        return (dir / name).string();
    }

    std::filesystem::path dir;
};

TEST_F(PersistenceTest, RoundTripsRealAnalysis)
{
    auto w = workloads::create("tomcatv");
    auto analysis = core::PhaseAnalysis::analyzeWorkload(*w);
    std::string file = path("tomcatv.lpp");
    ASSERT_TRUE(core::saveAnalysis(analysis, file));

    core::PersistedAnalysis loaded;
    ASSERT_TRUE(core::loadAnalysis(file, &loaded));

    // Marker table identical.
    auto orig = analysis.detection.selection.table.entries();
    EXPECT_EQ(loaded.table.size(), orig.size());
    for (const auto &e : orig) {
        ASSERT_NE(loaded.table.find(e.first), nullptr);
        EXPECT_EQ(*loaded.table.find(e.first), e.second);
    }

    // Phase stats identical.
    ASSERT_EQ(loaded.phases.size(),
              analysis.detection.selection.phases.size());
    for (const auto &p : analysis.detection.selection.phases) {
        const auto &q = loaded.phases[p.id];
        EXPECT_EQ(q.marker, p.marker);
        EXPECT_EQ(q.executions, p.executions);
        EXPECT_EQ(q.minInstructions, p.minInstructions);
        EXPECT_EQ(q.maxInstructions, p.maxInstructions);
        EXPECT_NEAR(q.markerQuality, p.markerQuality, 1e-9);
    }

    // Hierarchy equivalent (same expansion).
    ASSERT_NE(loaded.hierarchy, nullptr);
    EXPECT_EQ(loaded.hierarchy->expand(),
              analysis.hierarchy.root()->expand());
}

TEST_F(PersistenceTest, LoadedTableDrivesPrediction)
{
    auto w = workloads::create("compress");
    auto analysis = core::PhaseAnalysis::analyzeWorkload(*w);
    std::string file = path("compress.lpp");
    ASSERT_TRUE(core::saveAnalysis(analysis, file));
    core::PersistedAnalysis loaded;
    ASSERT_TRUE(core::loadAnalysis(file, &loaded));

    auto ref = w->refInput();
    auto replay = core::replayInstrumented(
        loaded.table,
        [&](trace::TraceSink &s) { w->run(ref, s); });
    EXPECT_GT(replay.executions.size(), 50u);
}

TEST_F(PersistenceTest, MissingFileFails)
{
    core::PersistedAnalysis out;
    EXPECT_FALSE(core::loadAnalysis(path("nope.lpp"), &out));
}

TEST_F(PersistenceTest, CorruptHeaderFails)
{
    std::string file = path("bad.lpp");
    {
        std::ofstream f(file);
        f << "not-an-analysis 1\nmarkers 0\n";
    }
    core::PersistedAnalysis out;
    EXPECT_FALSE(core::loadAnalysis(file, &out));
}

TEST_F(PersistenceTest, TruncatedFileFails)
{
    std::string file = path("trunc.lpp");
    {
        std::ofstream f(file);
        f << "lpp-analysis 1\nmarkers 3\n100 0\n";
    }
    core::PersistedAnalysis out;
    EXPECT_FALSE(core::loadAnalysis(file, &out));
}

TEST_F(PersistenceTest, EmptyHierarchyRoundTrips)
{
    core::AnalysisResult analysis; // no phases, no hierarchy
    std::string file = path("empty.lpp");
    ASSERT_TRUE(core::saveAnalysis(analysis, file));
    core::PersistedAnalysis out;
    ASSERT_TRUE(core::loadAnalysis(file, &out));
    EXPECT_TRUE(out.table.empty());
    EXPECT_EQ(out.hierarchy, nullptr);
}


TEST_F(PersistenceTest, FailedLoadLeavesOutputUntouched)
{
    core::PersistedAnalysis out;
    out.table.set(42, 7);
    out.phases.resize(1);
    out.phases[0].id = 0;
    out.phases[0].marker = 42;
    out.phases[0].executions = 9;

    auto untouched = [&out]() {
        if (out.table.size() != 1 || out.table.find(42) == nullptr ||
            *out.table.find(42) != 7u)
            return testing::AssertionFailure() << "table changed";
        if (out.phases.size() != 1 || out.phases[0].marker != 42u ||
            out.phases[0].executions != 9u)
            return testing::AssertionFailure() << "phases changed";
        if (out.hierarchy != nullptr)
            return testing::AssertionFailure() << "hierarchy changed";
        return testing::AssertionSuccess();
    };

    struct Case
    {
        const char *name;
        const char *content;
    };
    const Case cases[] = {
        {"trunc.lpp", "lpp-analysis 1\nmarkers 2\n1 0\n"},
        {"badphase.lpp",
         "lpp-analysis 1\nmarkers 0\nphases 1\n5 1 1 1 1 0.5\n"},
        {"nophases.lpp", "lpp-analysis 1\nmarkers 1\n9 0\n"},
        {"badregex.lpp",
         "lpp-analysis 1\nmarkers 1\n3 0\nphases 0\nhierarchy ((\n"},
    };
    for (const auto &c : cases) {
        std::string file = path(c.name);
        {
            std::ofstream f(file);
            f << c.content;
        }
        EXPECT_FALSE(core::loadAnalysis(file, &out)) << c.name;
        EXPECT_TRUE(untouched()) << c.name;
    }
}

TEST_F(PersistenceTest, SuccessfulLoadReplacesPreviousContent)
{
    // A load into a previously-populated output must replace it
    // wholesale; no stale markers or phases may survive.
    auto w = workloads::create("fft");
    auto analysis = core::PhaseAnalysis::analyzeWorkload(*w);
    std::string full = path("full.lpp");
    ASSERT_TRUE(core::saveAnalysis(analysis, full));

    core::AnalysisResult empty;
    std::string blank = path("blank.lpp");
    ASSERT_TRUE(core::saveAnalysis(empty, blank));

    core::PersistedAnalysis out;
    ASSERT_TRUE(core::loadAnalysis(full, &out));
    ASSERT_GT(out.table.size(), 0u);
    ASSERT_TRUE(core::loadAnalysis(blank, &out));
    EXPECT_TRUE(out.table.empty());
    EXPECT_TRUE(out.phases.empty());
    EXPECT_EQ(out.hierarchy, nullptr);
}

} // namespace
