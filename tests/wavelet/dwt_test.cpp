#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/random.hpp"
#include "wavelet/dwt.hpp"

namespace {

using namespace lpp::wavelet;

std::vector<double>
randomSignal(size_t n, uint64_t seed)
{
    lpp::Rng rng(seed);
    std::vector<double> x(n);
    for (auto &v : x)
        v = rng.gaussian() * 10.0;
    return x;
}

class DwtFamilySweep : public ::testing::TestWithParam<Family>
{};

TEST_P(DwtFamilySweep, SingleLevelPerfectReconstructionEvenLength)
{
    Dwt dwt(GetParam());
    auto x = randomSignal(64, 101);
    auto lc = dwt.analyzeLevel(x);
    auto y = dwt.synthesizeLevel(lc, x.size());
    ASSERT_EQ(y.size(), x.size());
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y[i], x[i], 1e-9) << "index " << i;
}

TEST_P(DwtFamilySweep, MultiLevelPerfectReconstruction)
{
    Dwt dwt(GetParam());
    auto x = randomSignal(128, 202);
    auto dec = dwt.decompose(x, 4);
    EXPECT_EQ(dec.detail.size(), 4u);
    auto y = dwt.reconstruct(dec);
    ASSERT_EQ(y.size(), x.size());
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y[i], x[i], 1e-9);
}

TEST_P(DwtFamilySweep, EnergyPreservedByAnalysis)
{
    // Orthonormal transform: ||x||^2 == ||approx||^2 + ||detail||^2.
    Dwt dwt(GetParam());
    auto x = randomSignal(256, 303);
    auto lc = dwt.analyzeLevel(x);
    double ex = 0.0, ec = 0.0;
    for (double v : x)
        ex += v * v;
    for (double v : lc.approx)
        ec += v * v;
    for (double v : lc.detail)
        ec += v * v;
    EXPECT_NEAR(ec, ex, 1e-6 * ex);
}

TEST_P(DwtFamilySweep, ConstantSignalHasZeroDetail)
{
    Dwt dwt(GetParam());
    std::vector<double> x(64, 5.0);
    auto lc = dwt.analyzeLevel(x);
    for (double d : lc.detail)
        EXPECT_NEAR(d, 0.0, 1e-10);
    auto stat = dwt.stationaryDetail(x);
    for (double d : stat)
        EXPECT_NEAR(d, 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DwtFamilySweep,
                         ::testing::Values(Family::Haar,
                                           Family::Daubechies4,
                                           Family::Daubechies6));

TEST(Dwt, HaarKnownValues)
{
    Dwt dwt(Family::Haar);
    std::vector<double> x = {1.0, 3.0, 5.0, 5.0};
    auto lc = dwt.analyzeLevel(x);
    double s2 = std::sqrt(2.0);
    ASSERT_EQ(lc.approx.size(), 2u);
    EXPECT_NEAR(lc.approx[0], 4.0 / s2, 1e-12);
    EXPECT_NEAR(lc.approx[1], 10.0 / s2, 1e-12);
    EXPECT_NEAR(lc.detail[0], -2.0 / s2, 1e-12);
    EXPECT_NEAR(lc.detail[1], 0.0, 1e-12);
}

TEST(Dwt, OddLengthPadsAndRoundTripsApproximately)
{
    Dwt dwt(Family::Haar);
    std::vector<double> x = {1.0, 2.0, 3.0};
    auto lc = dwt.analyzeLevel(x);
    EXPECT_EQ(lc.approx.size(), 2u);
    auto y = dwt.synthesizeLevel(lc, x.size());
    ASSERT_EQ(y.size(), 3u);
    // Haar with duplicate-padding reconstructs the original exactly.
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y[i], x[i], 1e-9);
}

TEST(Dwt, DecomposeClampsLevelsForShortSignals)
{
    Dwt dwt(Family::Daubechies6);
    auto x = randomSignal(16, 404);
    auto dec = dwt.decompose(x, 10);
    // 16 -> 8 -> 4 (< 6 taps stops further levels)
    EXPECT_LE(dec.detail.size(), 2u);
    auto y = dwt.reconstruct(dec);
    ASSERT_EQ(y.size(), x.size());
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y[i], x[i], 1e-9);
}

TEST(Dwt, StationaryDetailFlagsStepEdge)
{
    Dwt dwt(Family::Daubechies6);
    std::vector<double> x(100, 1.0);
    for (size_t i = 50; i < 100; ++i)
        x[i] = 100.0;
    auto d = dwt.stationaryDetail(x);
    ASSERT_EQ(d.size(), x.size());

    // The largest coefficient magnitude must sit near the step at 50.
    size_t argmax = 0;
    for (size_t i = 1; i < d.size(); ++i)
        if (std::abs(d[i]) > std::abs(d[argmax]))
            argmax = i;
    EXPECT_NEAR(static_cast<double>(argmax), 50.0, 4.0);

    // Far from the edge the response is ~0.
    EXPECT_NEAR(d[10], 0.0, 1e-8);
    EXPECT_NEAR(d[90], 0.0, 1e-8);
}

TEST(Dwt, StationaryDetailIgnoresLinearRamp)
{
    // Daubechies-4/6 have >= 2 vanishing moments: a linear ramp produces
    // (near-)zero detail away from boundaries, so gradual change is
    // filtered out — the property the paper's filtering step relies on.
    Dwt dwt(Family::Daubechies6);
    std::vector<double> x(100);
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = 3.0 * static_cast<double>(i);
    auto d = dwt.stationaryDetail(x);
    for (size_t i = 5; i + 5 < d.size(); ++i)
        EXPECT_NEAR(d[i], 0.0, 1e-7) << "index " << i;
}

TEST(Dwt, StationaryDetailHandlesTinySignals)
{
    Dwt dwt(Family::Daubechies6);
    std::vector<double> one = {7.0};
    auto d1 = dwt.stationaryDetail(one);
    ASSERT_EQ(d1.size(), 1u);
    EXPECT_NEAR(d1[0], 0.0, 1e-10); // constant extension of one point

    std::vector<double> two = {1.0, 2.0};
    auto d2 = dwt.stationaryDetail(two);
    EXPECT_EQ(d2.size(), 2u);
}

TEST(Dwt, EmptySignal)
{
    Dwt dwt(Family::Haar);
    auto lc = dwt.analyzeLevel({});
    EXPECT_TRUE(lc.approx.empty());
    EXPECT_TRUE(lc.detail.empty());
    EXPECT_TRUE(dwt.stationaryDetail({}).empty());
}

} // namespace
