#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "reuse/sampler.hpp"
#include "wavelet/filtering.hpp"

namespace {

using namespace lpp::wavelet;
using lpp::reuse::AccessSample;
using lpp::reuse::DataSample;
using lpp::reuse::SamplePoint;

DataSample
makeDatum(uint64_t element, const std::vector<double> &distances,
          uint64_t t0 = 0, uint64_t dt = 10)
{
    DataSample d;
    d.element = element;
    uint64_t t = t0;
    for (double dist : distances) {
        d.accesses.push_back(
            AccessSample{t, static_cast<uint64_t>(dist)});
        t += dt;
    }
    return d;
}

std::vector<double>
stepSignal(size_t n, size_t at, double lo, double hi)
{
    std::vector<double> x(n, lo);
    for (size_t i = at; i < n; ++i)
        x[i] = hi;
    return x;
}

TEST(SubTraceFilter, ConstantSignalKeepsNothing)
{
    SubTraceFilter filter;
    std::vector<double> x(50, 1000.0);
    EXPECT_TRUE(filter.filterSignal(x).empty());
}

TEST(SubTraceFilter, TooShortSignalDropped)
{
    SubTraceFilter filter;
    EXPECT_TRUE(filter.filterSignal({1.0, 2.0, 3.0}).empty());
}

TEST(SubTraceFilter, StepKeptNearEdge)
{
    SubTraceFilter filter;
    auto x = stepSignal(200, 100, 10.0, 100000.0);
    auto kept = filter.filterSignal(x);
    ASSERT_FALSE(kept.empty());
    for (size_t idx : kept) {
        EXPECT_GE(idx, 95u);
        EXPECT_LE(idx, 105u);
    }
}

TEST(SubTraceFilter, GradualRampFilteredOut)
{
    SubTraceFilter filter;
    std::vector<double> x(200);
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = 100.0 * static_cast<double>(i);
    auto kept = filter.filterSignal(x);
    // A pure ramp has (near-)uniform small coefficients: the mean+3sigma
    // rule keeps at most a couple of boundary artifacts.
    EXPECT_LE(kept.size(), 4u);
}

TEST(SubTraceFilter, LocalSpikeRejectedStepKept)
{
    // A single-sample spike (local peak) and a persistent level change;
    // the paper's example (Fig 2) keeps the level change, drops noise.
    SubTraceFilter filter;
    std::vector<double> x(300, 50.0);
    x[60] = 70.0; // small local wiggle
    for (size_t i = 150; i < x.size(); ++i)
        x[i] = 50000.0;
    auto kept = filter.filterSignal(x);
    ASSERT_FALSE(kept.empty());
    for (size_t idx : kept)
        EXPECT_GT(idx, 100u) << "small wiggle at 60 must not survive";
}

TEST(SubTraceFilter, MultipleStepsAllKept)
{
    SubTraceFilter filter;
    std::vector<double> x(400, 100.0);
    for (size_t i = 100; i < 200; ++i)
        x[i] = 50000.0;
    for (size_t i = 200; i < 300; ++i)
        x[i] = 100.0;
    for (size_t i = 300; i < 400; ++i)
        x[i] = 80000.0;
    auto kept = filter.filterSignal(x);
    auto near = [&](size_t edge) {
        for (size_t idx : kept)
            if (idx + 6 >= edge && idx <= edge + 6)
                return true;
        return false;
    };
    EXPECT_TRUE(near(100));
    EXPECT_TRUE(near(200));
    EXPECT_TRUE(near(300));
}

TEST(SubTraceFilter, ApplyDropsSparseDataAsNoise)
{
    FilterConfig cfg;
    cfg.minAccesses = 4;
    SubTraceFilter filter(cfg);
    std::vector<DataSample> data;
    data.push_back(makeDatum(1, {5.0, 6.0})); // too few: noise
    data.push_back(makeDatum(2, stepSignal(100, 50, 10.0, 90000.0)));

    FilterStats stats;
    auto merged = filter.apply(data, &stats);
    EXPECT_EQ(stats.dataSamples, 2u);
    EXPECT_EQ(stats.dropped, 1u);
    EXPECT_GT(stats.accessesKept, 0u);
    for (const auto &p : merged)
        EXPECT_EQ(p.datum, 1u) << "only datum index 1 contributes";
}

TEST(SubTraceFilter, ApplyMergesInTimeOrder)
{
    SubTraceFilter filter;
    std::vector<DataSample> data;
    // Two data with interleaved timestamps, both with a big step.
    data.push_back(makeDatum(1, stepSignal(100, 50, 10.0, 90000.0), 0, 7));
    data.push_back(makeDatum(2, stepSignal(100, 30, 20.0, 80000.0), 3, 11));

    auto merged = filter.apply(data);
    ASSERT_GT(merged.size(), 1u);
    for (size_t i = 1; i < merged.size(); ++i)
        EXPECT_LE(merged[i - 1].time, merged[i].time);
}

TEST(SubTraceFilter, StatsCountAccesses)
{
    SubTraceFilter filter;
    std::vector<DataSample> data;
    data.push_back(makeDatum(1, stepSignal(64, 32, 1.0, 100000.0)));
    FilterStats stats;
    filter.apply(data, &stats);
    EXPECT_EQ(stats.accessesIn, 64u);
    EXPECT_LE(stats.accessesKept, stats.accessesIn);
}

class FilterFamilySweep : public ::testing::TestWithParam<Family>
{};

TEST_P(FilterFamilySweep, StepDetectedByEveryFamily)
{
    // The paper reports that wavelet families other than Daubechies-6
    // produce similar results; verify the step survives all of them.
    FilterConfig cfg;
    cfg.family = GetParam();
    SubTraceFilter filter(cfg);
    auto x = stepSignal(200, 100, 10.0, 100000.0);
    auto kept = filter.filterSignal(x);
    ASSERT_FALSE(kept.empty());
    for (size_t idx : kept) {
        EXPECT_GE(idx, 94u);
        EXPECT_LE(idx, 106u);
    }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FilterFamilySweep,
                         ::testing::Values(Family::Haar,
                                           Family::Daubechies4,
                                           Family::Daubechies6));

} // namespace
