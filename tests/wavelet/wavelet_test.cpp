#include <gtest/gtest.h>

#include <cmath>

#include "wavelet/wavelet.hpp"

namespace {

using namespace lpp::wavelet;

class FamilySweep : public ::testing::TestWithParam<Family>
{};

TEST_P(FamilySweep, LowpassSumsToSqrt2)
{
    FilterBank bank(GetParam());
    double sum = 0.0;
    for (double h : bank.lowpass())
        sum += h;
    EXPECT_NEAR(sum, std::sqrt(2.0), 1e-12);
}

TEST_P(FamilySweep, LowpassIsUnitNorm)
{
    FilterBank bank(GetParam());
    double norm2 = 0.0;
    for (double h : bank.lowpass())
        norm2 += h * h;
    EXPECT_NEAR(norm2, 1.0, 1e-12);
}

TEST_P(FamilySweep, HighpassSumsToZero)
{
    FilterBank bank(GetParam());
    double sum = 0.0;
    for (double g : bank.highpass())
        sum += g;
    EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST_P(FamilySweep, HighpassIsUnitNorm)
{
    FilterBank bank(GetParam());
    double norm2 = 0.0;
    for (double g : bank.highpass())
        norm2 += g * g;
    EXPECT_NEAR(norm2, 1.0, 1e-12);
}

TEST_P(FamilySweep, LowAndHighpassOrthogonal)
{
    FilterBank bank(GetParam());
    double dot = 0.0;
    for (size_t k = 0; k < bank.length(); ++k)
        dot += bank.lowpass()[k] * bank.highpass()[k];
    EXPECT_NEAR(dot, 0.0, 1e-12);
}

TEST_P(FamilySweep, LowpassOrthogonalToEvenShifts)
{
    // <h, h(.-2m)> = delta(m): the double-shift orthogonality that makes
    // the decimated transform orthonormal.
    FilterBank bank(GetParam());
    const auto &h = bank.lowpass();
    for (size_t m = 1; 2 * m < h.size(); ++m) {
        double dot = 0.0;
        for (size_t k = 2 * m; k < h.size(); ++k)
            dot += h[k] * h[k - 2 * m];
        EXPECT_NEAR(dot, 0.0, 1e-12) << "shift " << m;
    }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweep,
                         ::testing::Values(Family::Haar,
                                           Family::Daubechies4,
                                           Family::Daubechies6));

TEST(FilterBank, TapCounts)
{
    EXPECT_EQ(FilterBank(Family::Haar).length(), 2u);
    EXPECT_EQ(FilterBank(Family::Daubechies4).length(), 4u);
    EXPECT_EQ(FilterBank(Family::Daubechies6).length(), 6u);
}

TEST(FilterBank, Names)
{
    EXPECT_EQ(FilterBank::name(Family::Haar), "Haar");
    EXPECT_EQ(FilterBank::name(Family::Daubechies6), "Daubechies-6");
}

TEST(FilterBank, Daubechies4VanishingMoment)
{
    // db2 has 2 vanishing moments: sum k*g[k] = 0 as well as sum g[k] = 0.
    FilterBank bank(Family::Daubechies4);
    double moment1 = 0.0;
    for (size_t k = 0; k < bank.length(); ++k)
        moment1 += static_cast<double>(k) * bank.highpass()[k];
    EXPECT_NEAR(moment1, 0.0, 1e-10);
}

TEST(FilterBank, Daubechies6VanishingMoments)
{
    FilterBank bank(Family::Daubechies6);
    for (int p = 0; p <= 2; ++p) {
        double moment = 0.0;
        for (size_t k = 0; k < bank.length(); ++k)
            moment += std::pow(static_cast<double>(k), p) *
                      bank.highpass()[k];
        EXPECT_NEAR(moment, 0.0, 1e-7) << "moment " << p;
    }
}

} // namespace
