#include <gtest/gtest.h>

#include <vector>

#include "cache/resizing.hpp"

namespace {

using namespace lpp::cache;

/** Unit with a given best size: misses drop to `floor` at `best` ways. */
SegmentLocality
unitWithBest(uint32_t best, uint64_t accesses = 10000,
             uint64_t floor_misses = 100)
{
    SegmentLocality u;
    u.accesses = accesses;
    for (uint32_t w = 1; w <= simWays; ++w)
        u.misses[w - 1] = w >= best ? floor_misses
                                    : floor_misses + 1000 * (best - w);
    return u;
}

TEST(BestWays, ZeroBoundRequiresEqualMisses)
{
    auto u = unitWithBest(5);
    EXPECT_EQ(bestWays(u, 0.0), 5u);
}

TEST(BestWays, LooseBoundAllowsSmaller)
{
    auto u = unitWithBest(5);
    // 5% of 100 = 5 extra misses: not enough for the 1000-miss step.
    EXPECT_EQ(bestWays(u, 0.05), 5u);
    // 1000% allows one step down.
    EXPECT_EQ(bestWays(u, 10.0), 4u);
}

TEST(BestWays, AlwaysAtMostSimWays)
{
    SegmentLocality u;
    u.accesses = 10;
    for (uint32_t w = 0; w < simWays; ++w)
        u.misses[w] = 10 - w;
    EXPECT_LE(bestWays(u, 0.0), simWays);
}

TEST(ResizeOracle, PicksBestPerUnit)
{
    std::vector<SegmentLocality> units = {unitWithBest(2),
                                          unitWithBest(8),
                                          unitWithBest(2)};
    auto r = resizeOracle(units, 0.0);
    EXPECT_DOUBLE_EQ(r.avgWays, 4.0);
    EXPECT_EQ(r.totalMisses, 300u);
    EXPECT_EQ(r.fullSizeMisses, 300u);
    EXPECT_DOUBLE_EQ(r.missIncrease(), 0.0);
}

TEST(ResizeInterval, StablePhaseConvergesAfterExploration)
{
    std::vector<SegmentLocality> units(10, unitWithBest(2));
    auto r = resizeInterval(units, 0.0);
    // Units: full(8), half(4), then 2 for the remaining 8.
    EXPECT_NEAR(r.avgWays, (8.0 + 4.0 + 8 * 2.0) / 10.0, 1e-9);
    EXPECT_EQ(r.explorations, 2u);
}

TEST(ResizeInterval, ReexploresOnEveryBestChange)
{
    // Alternating best sizes: perfect detection fires constantly and
    // the policy keeps exploring — the paper's point about intervals
    // fighting non-uniform behaviour.
    std::vector<SegmentLocality> units;
    for (int i = 0; i < 20; ++i)
        units.push_back(unitWithBest(i % 2 ? 2 : 7));
    auto r = resizeInterval(units, 0.0);
    EXPECT_GT(r.explorations, 8u);
    EXPECT_GT(r.avgWays, 4.0);
}

TEST(ResizePhase, RecurringKeysReuseLearnedSize)
{
    // Two phases alternating, 10 occurrences each.
    std::vector<SegmentLocality> units;
    std::vector<uint64_t> keys;
    for (int i = 0; i < 20; ++i) {
        units.push_back(unitWithBest(i % 2 ? 2 : 6));
        keys.push_back(i % 2);
    }
    auto r = resizePhase(units, keys, 0.0);
    // Each key: 8, 4, then learned (6 or 2) x8.
    double expect =
        (8 + 4 + 8 * 6.0 + 8 + 4 + 8 * 2.0) / 20.0;
    EXPECT_NEAR(r.avgWays, expect, 1e-9);
    EXPECT_EQ(r.explorations, 4u);
}

TEST(ResizePhase, LearnedSizeComesFromFirstOccurrence)
{
    std::vector<SegmentLocality> units = {unitWithBest(3),
                                          unitWithBest(3),
                                          unitWithBest(3)};
    std::vector<uint64_t> keys = {7, 7, 7};
    auto r = resizePhase(units, keys, 0.0);
    EXPECT_NEAR(r.avgWays, (8.0 + 4.0 + 3.0) / 3.0, 1e-9);
}

TEST(ResizeBbv, CurrentBestTracksClusterDrift)
{
    // A cluster whose members drift from best=2 to best=7: the policy
    // follows with one unit of lag.
    std::vector<SegmentLocality> units;
    std::vector<uint32_t> clusters;
    for (int i = 0; i < 6; ++i) {
        units.push_back(unitWithBest(i < 3 ? 2 : 7));
        clusters.push_back(0);
    }
    auto r = resizeBbv(units, clusters, 0.0);
    // Chosen: 8, 4, 2, 2(lag), 7, 7.
    EXPECT_NEAR(r.avgWays, (8 + 4 + 2 + 2 + 7 + 7) / 6.0, 1e-9);
    // The lagged unit pays extra misses.
    EXPECT_GT(r.totalMisses, r.fullSizeMisses);
}

TEST(ResizePolicies, PhaseBeatsIntervalOnRecurringNonUniformUnits)
{
    // The Fig 6 situation in miniature: three phases of different best
    // sizes recur in a cycle. Interval's perfect detection re-explores
    // at every change; phase learns each key once.
    std::vector<SegmentLocality> units;
    std::vector<uint64_t> keys;
    for (int rep = 0; rep < 30; ++rep) {
        for (uint32_t p = 0; p < 3; ++p) {
            units.push_back(unitWithBest(p == 0 ? 1 : p == 1 ? 4 : 2));
            keys.push_back(p);
        }
    }
    auto phase = resizePhase(units, keys, 0.0);
    auto interval = resizeInterval(units, 0.0);
    auto oracle = resizeOracle(units, 0.0);
    EXPECT_LT(phase.avgWays, interval.avgWays);
    EXPECT_GE(phase.avgWays, oracle.avgWays);
}

TEST(ResizeResults, NormalizedSizeAndKB)
{
    ResizingResult r;
    r.avgWays = 4.0;
    EXPECT_DOUBLE_EQ(r.normalizedSize(), 0.5);
    EXPECT_DOUBLE_EQ(r.avgKB(), 128.0);
}

TEST(ResizeEmptyInputs, AllPoliciesSafe)
{
    std::vector<SegmentLocality> none;
    EXPECT_DOUBLE_EQ(resizeOracle(none, 0.0).avgWays, 8.0);
    EXPECT_DOUBLE_EQ(resizeInterval(none, 0.0).avgWays, 8.0);
    EXPECT_DOUBLE_EQ(
        resizePhase(none, {}, 0.0).avgWays, 8.0);
    EXPECT_DOUBLE_EQ(
        resizeBbv(none, {}, 0.0).avgWays, 8.0);
}

} // namespace
