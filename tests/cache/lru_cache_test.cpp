#include <gtest/gtest.h>

#include "cache/lru_cache.hpp"
#include "support/random.hpp"

namespace {

using namespace lpp::cache;

TEST(CacheConfig, CapacityMath)
{
    CacheConfig cfg{512, 8, 64};
    EXPECT_EQ(cfg.capacityBytes(), 256u * 1024u);
    EXPECT_DOUBLE_EQ(cfg.capacityKB(), 256.0);
    CacheConfig one_way{512, 1, 64};
    EXPECT_DOUBLE_EQ(one_way.capacityKB(), 32.0);
}

TEST(LruCache, ColdMissThenHit)
{
    LruCache c(CacheConfig{16, 2, 64});
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1038)); // same 64-byte block
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(LruCache, LruEvictionOrder)
{
    // Direct-mapped-like conflict in one set: 1 set x 2 ways.
    LruCache c(CacheConfig{1, 2, 64});
    c.access(0 * 64);   // miss, cache {0}
    c.access(1 * 64);   // miss, cache {1,0}
    c.access(0 * 64);   // hit,  cache {0,1}
    c.access(2 * 64);   // miss, evicts 1 (LRU)
    EXPECT_TRUE(c.access(0 * 64));
    EXPECT_FALSE(c.access(1 * 64));
    EXPECT_EQ(c.misses(), 4u);
}

TEST(LruCache, SetIndexingSeparatesBlocks)
{
    LruCache c(CacheConfig{2, 1, 64});
    c.access(0 * 64); // set 0
    c.access(1 * 64); // set 1
    EXPECT_TRUE(c.access(0 * 64));
    EXPECT_TRUE(c.access(1 * 64));
}

TEST(LruCache, MissRateOfStreamingSweep)
{
    LruCache c(CacheConfig{512, 8, 64});
    // Touch 8 words per block: 1 miss per 8 accesses.
    for (uint64_t w = 0; w < 8000; ++w)
        c.access(0x100000 + w * 8);
    EXPECT_NEAR(c.missRate(), 1.0 / 8.0, 0.001);
}

TEST(LruCache, WorkingSetFitsAfterWarmup)
{
    LruCache c(CacheConfig{512, 8, 64});
    // 128KB working set in a 256KB cache.
    for (int pass = 0; pass < 4; ++pass)
        for (uint64_t b = 0; b < 2048; ++b)
            c.access(b * 64);
    EXPECT_EQ(c.misses(), 2048u); // cold only
}

TEST(LruCache, ThrashingWhenWorkingSetExceedsCapacity)
{
    LruCache c(CacheConfig{512, 1, 64});
    // 64KB round-robin through a 32KB direct-mapped cache: every access
    // conflicts.
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t b = 0; b < 1024; ++b)
            c.access(b * 64);
    EXPECT_DOUBLE_EQ(c.missRate(), 1.0);
}

TEST(LruCache, ResetClearsContents)
{
    LruCache c(CacheConfig{16, 2, 64});
    c.access(0x100);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.access(0x100));
}

TEST(LruCache, ResetCountersKeepsContentsWarm)
{
    LruCache c(CacheConfig{16, 2, 64});
    c.access(0x100);
    c.resetCounters();
    EXPECT_TRUE(c.access(0x100));
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_EQ(c.accesses(), 1u);
}

TEST(LruCache, SinkInterfaceCounts)
{
    LruCache c;
    lpp::trace::TraceSink &sink = c;
    sink.onAccess(0x40);
    sink.onAccess(0x40);
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(LruCacheDeathTest, RejectsNonPowerOfTwoSets)
{
    EXPECT_DEATH(LruCache(CacheConfig{3, 2, 64}), "power of two");
}

class AssocSweep : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(AssocSweep, HigherAssociativityNeverMissesMore)
{
    // LRU inclusion: misses are monotone non-increasing in ways.
    uint32_t ways = GetParam();
    lpp::Rng rng(ways);
    LruCache small(CacheConfig{64, ways, 64});
    LruCache big(CacheConfig{64, ways * 2, 64});
    for (int i = 0; i < 20000; ++i) {
        uint64_t addr = rng.below(1 << 19);
        small.access(addr);
        big.access(addr);
    }
    EXPECT_GE(small.misses(), big.misses());
}

INSTANTIATE_TEST_SUITE_P(Ways, AssocSweep, ::testing::Values(1, 2, 4));

} // namespace
