#include <gtest/gtest.h>

#include "cache/lru_cache.hpp"
#include "cache/stack_sim.hpp"
#include "support/random.hpp"

namespace {

using namespace lpp::cache;

TEST(SegmentLocality, MissRateVectorAndMerge)
{
    SegmentLocality a;
    a.accesses = 100;
    for (uint32_t w = 0; w < simWays; ++w)
        a.misses[w] = 80 - w * 10;
    auto v = a.missRateVector();
    ASSERT_EQ(v.size(), simWays);
    EXPECT_DOUBLE_EQ(v[0], 0.8);
    EXPECT_DOUBLE_EQ(v[7], 0.1);

    SegmentLocality b = a;
    b.merge(a);
    EXPECT_EQ(b.accesses, 200u);
    EXPECT_EQ(b.misses[0], 160u);
}

TEST(StackSimulator, MatchesConcreteLruCachesAtEveryWays)
{
    // One pass of the stack simulator equals eight separate LRU caches.
    lpp::Rng rng(57);
    StackSimulator sim(64, 64);
    std::vector<LruCache> caches;
    for (uint32_t w = 1; w <= simWays; ++w)
        caches.emplace_back(CacheConfig{64, w, 64});

    for (int i = 0; i < 30000; ++i) {
        uint64_t addr = rng.below(1 << 19);
        sim.onAccess(addr);
        for (auto &c : caches)
            c.access(addr);
    }
    auto total = sim.total();
    EXPECT_EQ(total.accesses, 30000u);
    for (uint32_t w = 1; w <= simWays; ++w)
        EXPECT_EQ(total.misses[w - 1], caches[w - 1].misses())
            << "ways " << w;
}

TEST(StackSimulator, InclusionPropertyHolds)
{
    lpp::Rng rng(58);
    StackSimulator sim;
    for (int i = 0; i < 50000; ++i)
        sim.onAccess(rng.below(1 << 21));
    auto total = sim.total();
    for (uint32_t w = 1; w < simWays; ++w)
        EXPECT_GE(total.misses[w - 1], total.misses[w]);
}

TEST(StackSimulator, SegmentsSumToTotal)
{
    lpp::Rng rng(59);
    StackSimulator sim;
    for (int seg = 0; seg < 5; ++seg) {
        for (int i = 0; i < 4000; ++i)
            sim.onAccess(rng.below(1 << 18));
        sim.markSegment();
    }
    SegmentLocality sum;
    for (const auto &s : sim.segments())
        sum.merge(s);
    auto total = sim.total();
    EXPECT_EQ(sum.accesses, total.accesses);
    for (uint32_t w = 0; w < simWays; ++w)
        EXPECT_EQ(sum.misses[w], total.misses[w]);
}

TEST(StackSimulator, CacheStaysWarmAcrossSegments)
{
    StackSimulator sim;
    for (uint64_t b = 0; b < 100; ++b)
        sim.onAccess(b * 64);
    sim.markSegment();
    for (uint64_t b = 0; b < 100; ++b)
        sim.onAccess(b * 64);
    sim.onEnd();
    ASSERT_EQ(sim.segments().size(), 2u);
    // Second segment hits everywhere at full size (working set fits).
    EXPECT_EQ(sim.segments()[1].misses[simWays - 1], 0u);
}

TEST(StackSimulator, OnEndClosesOpenSegmentOnly)
{
    StackSimulator sim;
    sim.onAccess(0);
    sim.onEnd();
    sim.onEnd(); // second end: nothing new
    EXPECT_EQ(sim.segments().size(), 1u);
}

TEST(StackSimulator, CapacityKB)
{
    StackSimulator sim(512, 64);
    EXPECT_DOUBLE_EQ(sim.capacityKB(1), 32.0);
    EXPECT_DOUBLE_EQ(sim.capacityKB(8), 256.0);
}

TEST(StackSimulator, StreamingSweepMissesEverySizeEqually)
{
    // Working set far beyond 256KB: every size misses once per block.
    StackSimulator sim;
    for (uint64_t b = 0; b < 100000; ++b)
        sim.onAccess(b * 64);
    auto total = sim.total();
    for (uint32_t w = 0; w < simWays; ++w)
        EXPECT_EQ(total.misses[w], 100000u);
}

TEST(StackSimulator, SmallWorkingSetHitsAtEverySize)
{
    StackSimulator sim;
    // 16KB working set: fits even the 32KB 1-way cache (no conflicts
    // within one wrap of the sets).
    for (int pass = 0; pass < 10; ++pass)
        for (uint64_t b = 0; b < 256; ++b)
            sim.onAccess(b * 64);
    auto total = sim.total();
    EXPECT_EQ(total.misses[0], 256u); // cold only
}

} // namespace
