#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/lru_cache.hpp"
#include "cache/opt_sim.hpp"
#include "support/random.hpp"

namespace {

using namespace lpp::cache;
using lpp::trace::Addr;

TEST(OptSimulator, ColdMissesOnly)
{
    OptSimulator sim(CacheConfig{4, 2, 64});
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t b = 0; b < 8; ++b)
            sim.record(b * 64); // 8 blocks fit the 8-line cache
    EXPECT_EQ(sim.simulate(), 8u);
}

TEST(OptSimulator, BeladyClassicExample)
{
    // Fully-associative (1 set) 3-way cache; the textbook page string.
    OptSimulator sim(CacheConfig{1, 3, 64});
    for (uint64_t b : {7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2})
        sim.record(b * 64);
    // Belady: 7 misses for this string with 3 frames.
    EXPECT_EQ(sim.simulate(), 7u);
}

TEST(OptSimulator, NeverWorseThanLruAnywhere)
{
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        lpp::Rng rng(seed);
        std::vector<Addr> trace;
        for (int i = 0; i < 30000; ++i)
            trace.push_back(rng.below(1 << 18));

        for (uint32_t ways : {1u, 2u, 4u}) {
            CacheConfig cfg{64, ways, 64};
            LruCache lru(cfg);
            for (Addr a : trace)
                lru.access(a);
            EXPECT_LE(optMisses(trace, cfg), lru.misses())
                << "seed " << seed << " ways " << ways;
        }
    }
}

TEST(OptSimulator, EqualToLruWhenEverythingFits)
{
    lpp::Rng rng(9);
    std::vector<Addr> trace;
    for (int i = 0; i < 5000; ++i)
        trace.push_back(rng.below(32) * 64); // 32 blocks << capacity
    CacheConfig cfg{64, 8, 64};
    LruCache lru(cfg);
    for (Addr a : trace)
        lru.access(a);
    EXPECT_EQ(optMisses(trace, cfg), lru.misses());
}

TEST(OptSimulator, OptBeatsLruOnCyclicSweep)
{
    // The classic LRU pathology: cyclic sweep one block larger than
    // the cache. LRU misses everything, OPT keeps most of it.
    CacheConfig cfg{1, 8, 64}; // fully associative, 8 lines
    std::vector<Addr> trace;
    for (int pass = 0; pass < 50; ++pass)
        for (uint64_t b = 0; b < 9; ++b)
            trace.push_back(b * 64);
    LruCache lru(cfg);
    for (Addr a : trace)
        lru.access(a);
    uint64_t opt = optMisses(trace, cfg);
    EXPECT_EQ(lru.misses(), trace.size());
    EXPECT_LT(opt, trace.size() / 3);
}

TEST(OptSimulator, RepeatedSimulateIsIdempotent)
{
    OptSimulator sim(CacheConfig{4, 2, 64});
    lpp::Rng rng(3);
    for (int i = 0; i < 2000; ++i)
        sim.record(rng.below(1 << 14));
    uint64_t first = sim.simulate();
    EXPECT_EQ(sim.simulate(), first);
    EXPECT_GT(sim.missRate(), 0.0);
}

TEST(OptSimulator, SinkInterfaceRecords)
{
    OptSimulator sim;
    lpp::trace::TraceSink &sink = sim;
    sink.onAccess(0);
    sink.onAccess(64);
    EXPECT_EQ(sim.accesses(), 2u);
}

TEST(OptSimulatorDeathTest, RejectsBadGeometry)
{
    EXPECT_DEATH(OptSimulator(CacheConfig{3, 1, 64}), "power of two");
}

} // namespace

TEST(OptSimulator, BatchedRecordingMatchesScalar)
{
    lpp::Rng rng(11);
    std::vector<Addr> trace;
    for (int i = 0; i < 30000; ++i)
        trace.push_back(rng.below(1 << 18));

    CacheConfig cfg{16, 2, 64};
    OptSimulator one(cfg), batched(cfg);
    for (Addr a : trace)
        one.onAccess(a);
    static const size_t sizes[] = {1, 7, 64, 3, 1000, 2, 4096, 13};
    size_t i = 0, s = 0;
    while (i < trace.size()) {
        size_t take = std::min(sizes[s++ % 8], trace.size() - i);
        batched.onAccessBatch(trace.data() + i, take);
        i += take;
    }

    EXPECT_EQ(one.accesses(), batched.accesses());
    EXPECT_EQ(one.simulate(), batched.simulate());
}
