#include <gtest/gtest.h>

#include "reuse/sampler.hpp"
#include "support/random.hpp"

namespace {

using namespace lpp::reuse;
using lpp::trace::elementBytes;

SamplerConfig
fixedThresholds(uint64_t qual, uint64_t temporal, uint64_t spatial)
{
    SamplerConfig cfg;
    cfg.initialQualification = qual;
    cfg.initialTemporal = temporal;
    cfg.initialSpatial = spatial;
    cfg.checkInterval = 1ULL << 60; // effectively disable feedback
    return cfg;
}

/** Sweep `n` elements starting at element index `base`, once. */
void
sweep(VariableDistanceSampler &s, uint64_t base, uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        s.onAccess((base + i) * elementBytes);
}

TEST(Sampler, NoSamplesFromColdAccessesOnly)
{
    VariableDistanceSampler s(fixedThresholds(10, 10, 0));
    sweep(s, 0, 1000); // every access is cold (infinite distance)
    EXPECT_EQ(s.sampleCount(), 0u);
    EXPECT_TRUE(s.samples().empty());
}

TEST(Sampler, QualifiesLongReuses)
{
    VariableDistanceSampler s(fixedThresholds(100, 100, 0));
    sweep(s, 0, 200);
    sweep(s, 0, 200); // every reuse has distance 199
    EXPECT_GT(s.samples().size(), 0u);
    EXPECT_GT(s.sampleCount(), 0u);
}

TEST(Sampler, ShortReusesAreIgnored)
{
    VariableDistanceSampler s(fixedThresholds(1000, 1000, 0));
    for (int pass = 0; pass < 20; ++pass)
        sweep(s, 0, 100); // reuse distance 99 < 1000
    EXPECT_EQ(s.sampleCount(), 0u);
}

TEST(Sampler, TemporalThresholdFiltersRecordings)
{
    // Qualify on a long reuse once, then reuse with short distances: the
    // datum exists but accrues no further access samples.
    VariableDistanceSampler s(fixedThresholds(150, 150, 0));
    sweep(s, 0, 200);
    sweep(s, 0, 200); // qualifies many data samples at distance 199
    EXPECT_GT(s.sampleCount(), 0u);

    // Tight loop over one sampled element: the first access may still be
    // a long reuse (distance from the last sweep), but every later one
    // has distance 0 and must not be recorded.
    uint64_t element = s.samples().front().element;
    s.onAccess(element * elementBytes);
    uint64_t after_first = s.sampleCount();
    for (int i = 0; i < 50; ++i)
        s.onAccess(element * elementBytes);
    EXPECT_EQ(s.sampleCount(), after_first);
}

TEST(Sampler, SpatialThresholdSpacesDataSamples)
{
    VariableDistanceSampler dense(fixedThresholds(100, 100, 0));
    VariableDistanceSampler sparse(fixedThresholds(100, 100, 64));
    for (int pass = 0; pass < 2; ++pass) {
        sweep(dense, 0, 512);
        sweep(sparse, 0, 512);
    }
    EXPECT_GT(dense.samples().size(), sparse.samples().size());
    // Every pair of sparse data samples is at least 64 elements apart.
    for (size_t i = 0; i < sparse.samples().size(); ++i) {
        for (size_t j = i + 1; j < sparse.samples().size(); ++j) {
            uint64_t a = sparse.samples()[i].element;
            uint64_t b = sparse.samples()[j].element;
            EXPECT_GE(a > b ? a - b : b - a, 64u);
        }
    }
}

TEST(Sampler, MaxDataSamplesRespected)
{
    SamplerConfig cfg = fixedThresholds(50, 50, 0);
    cfg.maxDataSamples = 5;
    VariableDistanceSampler s(cfg);
    for (int pass = 0; pass < 4; ++pass)
        sweep(s, 0, 300);
    EXPECT_LE(s.samples().size(), 5u);
}

TEST(Sampler, MergedTraceSortedAndComplete)
{
    VariableDistanceSampler s(fixedThresholds(100, 100, 8));
    for (int pass = 0; pass < 5; ++pass)
        sweep(s, 0, 400);
    auto merged = s.mergedTrace();
    EXPECT_EQ(merged.size(), s.sampleCount());
    for (size_t i = 1; i < merged.size(); ++i)
        EXPECT_LE(merged[i - 1].time, merged[i].time);
    for (const auto &p : merged)
        EXPECT_LT(p.datum, s.samples().size());
}

TEST(Sampler, FeedbackReducesOverCollection)
{
    // A workload with abundant long reuses and a tiny target: feedback
    // must raise thresholds and keep the final count near target.
    SamplerConfig cfg;
    cfg.targetSamples = 200;
    cfg.initialQualification = 64;
    cfg.initialTemporal = 32;
    cfg.initialSpatial = 0;
    cfg.checkInterval = 4096;
    cfg.expectedAccesses = 600000;
    VariableDistanceSampler s(cfg);
    for (int pass = 0; pass < 600; ++pass)
        sweep(s, 0, 1000);
    EXPECT_GT(s.adjustments(), 0u);
    // Unthrottled, every one of ~599000 reuses would be recorded; the
    // sampler cannot react before its first check (~checkInterval
    // samples), but feedback must stop collection soon after.
    EXPECT_LT(s.sampleCount(), 100u * cfg.targetSamples);
    EXPECT_GT(s.qualificationThreshold(), cfg.initialQualification);
}

TEST(Sampler, FeedbackRaisesCollectionWhenStarved)
{
    // Thresholds start too high for a small working set; feedback should
    // lower them until samples flow.
    SamplerConfig cfg;
    cfg.targetSamples = 500;
    cfg.initialQualification = 1ULL << 40;
    cfg.initialTemporal = 1ULL << 40;
    cfg.initialSpatial = 0;
    cfg.checkInterval = 2048;
    cfg.expectedAccesses = 400000;
    VariableDistanceSampler s(cfg);
    for (int pass = 0; pass < 400; ++pass)
        sweep(s, 0, 1000);
    EXPECT_GT(s.adjustments(), 0u);
    EXPECT_GT(s.sampleCount(), 0u);
    EXPECT_LT(s.qualificationThreshold(), 1ULL << 40);
}

TEST(Sampler, AccessSamplesStoredPerDatumInTimeOrder)
{
    VariableDistanceSampler s(fixedThresholds(100, 100, 0));
    for (int pass = 0; pass < 6; ++pass)
        sweep(s, 0, 256);
    for (const auto &d : s.samples()) {
        for (size_t i = 1; i < d.accesses.size(); ++i)
            EXPECT_LT(d.accesses[i - 1].time, d.accesses[i].time);
    }
}

} // namespace
