#include <gtest/gtest.h>

#include "reuse/analyzer.hpp"

namespace {

using lpp::LogHistogram;
using lpp::reuse::ReuseAnalyzer;
using lpp::trace::elementBytes;

TEST(ReuseAnalyzer, HistogramTotalsMatchAccessCount)
{
    ReuseAnalyzer an;
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t i = 0; i < 10; ++i)
            an.onAccess(i * elementBytes);
    EXPECT_EQ(an.histogram().total(), 30u);
    EXPECT_EQ(an.histogram().infiniteCount(), 10u);
    EXPECT_EQ(an.distinctElements(), 10u);
    EXPECT_EQ(an.accessCount(), 30u);
}

TEST(ReuseAnalyzer, ElementGranularityMergesSameWord)
{
    ReuseAnalyzer an;
    an.onAccess(0);
    an.onAccess(4); // same 8-byte element
    EXPECT_EQ(an.histogram().infiniteCount(), 1u);
    EXPECT_EQ(an.distinctElements(), 1u);
}

TEST(ReuseAnalyzer, CyclicSweepMissRateSteps)
{
    // 64-element loop accessed repeatedly: every reuse distance is 63.
    ReuseAnalyzer an;
    for (int pass = 0; pass < 50; ++pass)
        for (uint64_t i = 0; i < 64; ++i)
            an.onAccess(i * elementBytes);
    // Capacity 128 holds the working set: only cold misses remain.
    EXPECT_NEAR(an.histogram().missRate(128), 64.0 / 3200.0, 1e-9);
    // Capacity 32 cannot hold it: LRU misses every access.
    EXPECT_DOUBLE_EQ(an.histogram().missRate(32), 1.0);
}

TEST(ReuseAnalyzer, SegmentsSplitHistogramNotHistory)
{
    ReuseAnalyzer an;
    for (uint64_t i = 0; i < 8; ++i)
        an.onAccess(i * elementBytes);
    an.markSegment();
    // Same elements again: reuse distances are finite because the stack
    // keeps history across segments.
    for (uint64_t i = 0; i < 8; ++i)
        an.onAccess(i * elementBytes);
    an.onEnd();

    ASSERT_EQ(an.segments().size(), 2u);
    EXPECT_EQ(an.segments()[0].infiniteCount(), 8u);
    EXPECT_EQ(an.segments()[1].infiniteCount(), 0u);
    EXPECT_EQ(an.segments()[1].totalFinite(), 8u);
}

TEST(ReuseAnalyzer, OnEndClosesOnlyNonEmptySegment)
{
    ReuseAnalyzer an;
    an.onAccess(0);
    an.markSegment();
    an.onEnd(); // current segment empty: no extra segment
    EXPECT_EQ(an.segments().size(), 1u);
}

TEST(ReuseAnalyzer, SegmentHistogramsSumToWhole)
{
    ReuseAnalyzer an;
    for (int pass = 0; pass < 4; ++pass) {
        for (uint64_t i = 0; i < 16; ++i)
            an.onAccess(i * elementBytes);
        an.markSegment();
    }
    LogHistogram sum;
    for (const auto &seg : an.segments())
        sum.merge(seg);
    EXPECT_EQ(sum.total(), an.histogram().total());
    EXPECT_EQ(sum.infiniteCount(), an.histogram().infiniteCount());
}

} // namespace
