#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "reuse/spatial.hpp"
#include "support/random.hpp"

namespace {

using namespace lpp::reuse;

TEST(Spatial, DenseSweepHasFullUtilization)
{
    SpatialAnalyzer an;
    for (uint64_t i = 0; i < 8000; ++i)
        an.onAccess(i * 8);
    auto p = an.wholeRun();
    EXPECT_EQ(p.accesses, 8000u);
    EXPECT_EQ(p.elementsTouched, 8000u);
    EXPECT_EQ(p.blocksTouched, 1000u);
    EXPECT_DOUBLE_EQ(p.blockUtilization(), 1.0);
    EXPECT_EQ(p.dominantStride, 8);
    EXPECT_GT(p.dominantStrideShare, 0.99);
    EXPECT_TRUE(p.isStreaming());
}

TEST(Spatial, StridedWalkHasLowUtilization)
{
    // Stride 8 elements = 64 bytes: one element per block.
    SpatialAnalyzer an;
    for (uint64_t i = 0; i < 1000; ++i)
        an.onAccess(i * 64);
    auto p = an.wholeRun();
    EXPECT_DOUBLE_EQ(p.blockUtilization(), 1.0 / 8.0);
    EXPECT_EQ(p.dominantStride, 64);
    EXPECT_TRUE(p.isStreaming()); // 64B is still within-block advance
}

TEST(Spatial, WideStrideIsNotStreaming)
{
    SpatialAnalyzer an;
    for (uint64_t i = 0; i < 1000; ++i)
        an.onAccess(i * 512);
    auto p = an.wholeRun();
    EXPECT_EQ(p.dominantStride, 512);
    EXPECT_FALSE(p.isStreaming());
    EXPECT_DOUBLE_EQ(p.blockUtilization(), 1.0 / 8.0);
}

TEST(Spatial, RandomAccessHasNoDominantStride)
{
    lpp::Rng rng(101);
    SpatialAnalyzer an;
    for (int i = 0; i < 20000; ++i)
        an.onAccess(rng.below(1 << 20) * 8);
    auto p = an.wholeRun();
    EXPECT_LT(p.dominantStrideShare, 0.05);
    EXPECT_FALSE(p.isStreaming());
}

TEST(Spatial, PerPhaseProfilesSeparate)
{
    SpatialAnalyzer an;
    an.onPhaseMarker(0); // dense phase
    for (uint64_t i = 0; i < 4000; ++i)
        an.onAccess(i * 8);
    an.onPhaseMarker(1); // strided phase
    for (uint64_t i = 0; i < 1000; ++i)
        an.onAccess(0x400000 + i * 64);
    an.onEnd();

    auto dense = an.profile(0);
    auto strided = an.profile(1);
    EXPECT_DOUBLE_EQ(dense.blockUtilization(), 1.0);
    EXPECT_DOUBLE_EQ(strided.blockUtilization(), 1.0 / 8.0);
    EXPECT_EQ(dense.dominantStride, 8);
    EXPECT_EQ(strided.dominantStride, 64);
    EXPECT_EQ(an.phasesSeen().size(), 2u);
}

TEST(Spatial, StrideDoesNotBridgePhaseBoundary)
{
    SpatialAnalyzer an;
    an.onPhaseMarker(0);
    an.onAccess(0);
    an.onPhaseMarker(1);
    an.onAccess(1 << 30); // huge jump, must not count as a stride of 1
    an.onAccess((1 << 30) + 8);
    auto p = an.profile(1);
    EXPECT_EQ(p.dominantStride, 8);
    EXPECT_DOUBLE_EQ(p.dominantStrideShare, 1.0);
}

TEST(Spatial, RepeatedPhaseAccumulates)
{
    SpatialAnalyzer an;
    for (int rep = 0; rep < 3; ++rep) {
        an.onPhaseMarker(5);
        for (uint64_t i = 0; i < 100; ++i)
            an.onAccess(i * 8);
    }
    auto p = an.profile(5);
    EXPECT_EQ(p.accesses, 300u);
    EXPECT_EQ(p.elementsTouched, 100u);
}

TEST(Spatial, UnknownPhaseIsEmpty)
{
    SpatialAnalyzer an;
    auto p = an.profile(42);
    EXPECT_EQ(p.accesses, 0u);
    EXPECT_DOUBLE_EQ(p.blockUtilization(), 0.0);
}

TEST(Spatial, BackwardSweepNegativeStride)
{
    SpatialAnalyzer an;
    for (uint64_t i = 1000; i > 0; --i)
        an.onAccess(i * 8);
    auto p = an.wholeRun();
    EXPECT_EQ(p.dominantStride, -8);
    EXPECT_FALSE(p.isStreaming()) << "negative stride defeats "
                                     "next-line prefetch";
}

} // namespace

testing::AssertionResult
sameProfile(const SpatialProfile &a, const SpatialProfile &b)
{
    if (a.accesses != b.accesses || a.blocksTouched != b.blocksTouched ||
        a.elementsTouched != b.elementsTouched ||
        a.dominantStride != b.dominantStride ||
        a.dominantStrideShare != b.dominantStrideShare)
        return testing::AssertionFailure() << "profiles differ";
    return testing::AssertionSuccess();
}

TEST(Spatial, BatchedDeliveryMatchesScalar)
{
    lpp::Rng rng(33);
    std::vector<lpp::trace::Addr> prologue, phase5;
    for (int i = 0; i < 6000; ++i)
        prologue.push_back(rng.below(1 << 16) * 8);
    for (uint64_t i = 0; i < 6000; ++i)
        phase5.push_back(i * 8);

    SpatialAnalyzer one, batched;
    for (auto a : prologue)
        one.onAccess(a);
    one.onPhaseMarker(5);
    for (auto a : phase5)
        one.onAccess(a);
    one.onEnd();

    static const size_t sizes[] = {1, 7, 64, 3, 1000, 2, 4096, 13};
    auto deliver = [&](const std::vector<lpp::trace::Addr> &addrs) {
        size_t i = 0, s = 0;
        while (i < addrs.size()) {
            size_t take = std::min(sizes[s++ % 8], addrs.size() - i);
            batched.onAccessBatch(addrs.data() + i, take);
            i += take;
        }
    };
    deliver(prologue);
    batched.onPhaseMarker(5);
    deliver(phase5);
    batched.onEnd();

    EXPECT_TRUE(sameProfile(one.wholeRun(), batched.wholeRun()));
    EXPECT_TRUE(sameProfile(one.profile(5), batched.profile(5)));
    EXPECT_TRUE(sameProfile(one.profile(0xFFFFFFFFu),
                            batched.profile(0xFFFFFFFFu)));
    EXPECT_EQ(one.phasesSeen(), batched.phasesSeen());
}
