#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "reuse/stack.hpp"
#include "support/random.hpp"

namespace {

using lpp::reuse::FenwickTree;
using lpp::reuse::ReuseStack;

constexpr uint64_t inf = ReuseStack::infinite;

/** O(n*m) reference: count distinct elements between consecutive uses. */
class NaiveReuse
{
  public:
    uint64_t
    access(uint64_t element)
    {
        uint64_t dist = inf;
        auto it = lastIndex.find(element);
        if (it != lastIndex.end()) {
            std::unordered_set<uint64_t> between;
            for (size_t i = it->second + 1; i < history.size(); ++i)
                between.insert(history[i]);
            dist = between.size();
        }
        lastIndex[element] = history.size();
        history.push_back(element);
        return dist;
    }

  private:
    std::vector<uint64_t> history;
    std::unordered_map<uint64_t, size_t> lastIndex;
};

TEST(FenwickTree, PrefixSums)
{
    FenwickTree t(8);
    t.add(0, 1);
    t.add(3, 1);
    t.add(7, 1);
    EXPECT_EQ(t.prefix(0), 1u);
    EXPECT_EQ(t.prefix(2), 1u);
    EXPECT_EQ(t.prefix(3), 2u);
    EXPECT_EQ(t.prefix(7), 3u);
}

TEST(FenwickTree, NegativeUpdates)
{
    FenwickTree t(4);
    t.add(1, 1);
    t.add(1, -1);
    t.add(2, 1);
    EXPECT_EQ(t.prefix(1), 0u);
    EXPECT_EQ(t.prefix(3), 1u);
}

TEST(ReuseStack, FirstAccessIsInfinite)
{
    ReuseStack s;
    EXPECT_EQ(s.access(1), inf);
    EXPECT_EQ(s.access(2), inf);
    EXPECT_EQ(s.distinctCount(), 2u);
}

TEST(ReuseStack, ImmediateReuseIsZero)
{
    ReuseStack s;
    s.access(1);
    EXPECT_EQ(s.access(1), 0u);
    EXPECT_EQ(s.access(1), 0u);
}

TEST(ReuseStack, ClassicAbaPattern)
{
    ReuseStack s;
    s.access('a');
    s.access('b');
    EXPECT_EQ(s.access('a'), 1u);
}

TEST(ReuseStack, DuplicatesBetweenCountOnce)
{
    ReuseStack s;
    s.access('a');
    s.access('b');
    s.access('c');
    s.access('b');
    EXPECT_EQ(s.access('a'), 2u); // b and c, b counted once
}

TEST(ReuseStack, CyclicSweepDistanceIsWorkingSetMinusOne)
{
    const uint64_t n = 100;
    ReuseStack s;
    for (uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(s.access(i), inf);
    for (int pass = 0; pass < 3; ++pass) {
        for (uint64_t i = 0; i < n; ++i)
            EXPECT_EQ(s.access(i), n - 1);
    }
    EXPECT_EQ(s.accessCount(), 4 * n);
}

TEST(ReuseStack, MatchesNaiveOnRandomTrace)
{
    lpp::Rng rng(41);
    ReuseStack fast;
    NaiveReuse slow;
    for (int i = 0; i < 3000; ++i) {
        uint64_t e = rng.below(60);
        EXPECT_EQ(fast.access(e), slow.access(e)) << "at access " << i;
    }
}

TEST(ReuseStack, CompactionPreservesDistances)
{
    // Tiny capacity hint forces many compactions.
    lpp::Rng rng(43);
    ReuseStack fast(64);
    NaiveReuse slow;
    for (int i = 0; i < 5000; ++i) {
        uint64_t e = rng.below(40);
        ASSERT_EQ(fast.access(e), slow.access(e)) << "at access " << i;
    }
}

TEST(ReuseStack, ManyCompactionsBitIdenticalToLargeCapacityStack)
{
    // A stack with a tiny capacity hint compacts its time axis over
    // and over; one sized for the whole trace up front never does.
    // Distances must be bit-identical at every access regardless —
    // compaction is a pure re-numbering of the time axis. The trace
    // mixes phase-local sweeps with random reuse and a growing working
    // set so compactions land in every regime (dense marks, stale
    // marks, mid-sweep).
    lpp::Rng rng(97);
    ReuseStack tiny(8);       // compacts hundreds of times
    ReuseStack big(1u << 20); // never compacts in this trace
    uint64_t phase_base = 0;
    for (int phase = 0; phase < 6; ++phase) {
        const uint64_t working_set = 50 + 80 * phase;
        for (int i = 0; i < 20000; ++i) {
            uint64_t e;
            if (i % 3 == 0)
                e = phase_base + (i % working_set); // sweep
            else
                e = phase_base + rng.below(working_set);
            ASSERT_EQ(tiny.access(e), big.access(e))
                << "phase " << phase << " access " << i;
        }
        phase_base += working_set / 2; // partial working-set overlap
    }
    EXPECT_EQ(tiny.accessCount(), big.accessCount());
    EXPECT_EQ(tiny.distinctCount(), big.distinctCount());
}

TEST(ReuseStack, ResetForgetsHistory)
{
    ReuseStack s;
    s.access(1);
    s.reset();
    EXPECT_EQ(s.access(1), inf);
    EXPECT_EQ(s.accessCount(), 1u);
    EXPECT_EQ(s.distinctCount(), 1u);
}

TEST(ReuseStack, LargeWorkingSetBeyondInitialCapacity)
{
    ReuseStack s(128);
    const uint64_t n = 5000;
    for (uint64_t i = 0; i < n; ++i)
        s.access(i);
    for (uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(s.access(i), n - 1);
}

struct SweepParam
{
    uint64_t elements;
    size_t capacityHint;
};

class ReuseStackSweep : public ::testing::TestWithParam<SweepParam>
{};

TEST_P(ReuseStackSweep, RandomTraceMatchesNaive)
{
    auto [elements, hint] = GetParam();
    lpp::Rng rng(elements * 31 + hint);
    ReuseStack fast(hint);
    NaiveReuse slow;
    for (int i = 0; i < 1500; ++i) {
        uint64_t e = rng.below(elements);
        ASSERT_EQ(fast.access(e), slow.access(e));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReuseStackSweep,
    ::testing::Values(SweepParam{2, 64}, SweepParam{8, 64},
                      SweepParam{64, 64}, SweepParam{64, 4096},
                      SweepParam{512, 64}, SweepParam{512, 1u << 16}));

} // namespace
