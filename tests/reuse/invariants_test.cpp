/**
 * @file
 * Regression tests for the LPP_DCHECK invariants on the sampling and
 * BBV paths: in-order observation and per-datum sub-trace monotonicity
 * in the sampler, feedback thresholds pinned to their configured band,
 * and unit-L1 BBV interval vectors. The death tests arm in debug
 * builds and under LPP_DCHECKS (the sanitizer presets); release
 * builds exercise the positive paths only.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bbv/bbv.hpp"
#include "reuse/sampler.hpp"
#include "reuse/stack.hpp"

namespace {

using lpp::bbv::BbvCollector;
using lpp::reuse::ReuseStack;
using lpp::reuse::SamplerConfig;
using lpp::reuse::VariableDistanceSampler;

SamplerConfig
tinyConfig()
{
    SamplerConfig cfg;
    cfg.initialQualification = 4;
    cfg.initialTemporal = 4;
    cfg.initialSpatial = 0;
    cfg.floorQualification = 2;
    cfg.floorTemporal = 2;
    cfg.checkInterval = 64;
    cfg.targetSamples = 8;
    return cfg;
}

TEST(SamplerInvariants, InOrderObservationsAreAccepted)
{
    auto s = VariableDistanceSampler::externalDistances(tinyConfig());
    // A datum reused repeatedly at qualifying distances: every
    // invariant holds, samples accumulate in time order.
    s.observe(7, 0, ReuseStack::infinite);
    s.observe(7, 1, 10);
    s.observe(8, 2, ReuseStack::infinite);
    s.observe(7, 3, 12);
    EXPECT_EQ(s.accessCount(), 4u);
    ASSERT_EQ(s.samples().size(), 1u);
    const auto &accesses = s.samples()[0].accesses;
    ASSERT_EQ(accesses.size(), 2u);
    EXPECT_LT(accesses[0].time, accesses[1].time);
}

TEST(SamplerInvariantsDeathTest, OutOfOrderObservationPanics)
{
#if !defined(NDEBUG) || defined(LPP_FORCE_DCHECKS)
    auto s = VariableDistanceSampler::externalDistances(tinyConfig());
    s.observe(7, 0, ReuseStack::infinite);
    s.observe(7, 1, 10);
    // Time 1 repeated: the stream went backwards.
    EXPECT_DEATH(s.observe(7, 1, 10), "out of order");
#else
    GTEST_SKIP() << "sampler clock check is debug-only (LPP_DCHECK)";
#endif
}

TEST(SamplerInvariants, FeedbackKeepsThresholdsInBand)
{
    SamplerConfig cfg = tinyConfig();
    cfg.ceilQualification = 64;
    cfg.ceilTemporal = 64;
    auto s = VariableDistanceSampler::externalDistances(cfg);

    // Flood with qualifying samples so feedback raises the thresholds
    // repeatedly; the clamp (and its DCHECK) must hold at every check.
    uint64_t now = 0;
    for (int round = 0; round < 64; ++round) {
        for (uint64_t e = 0; e < 16; ++e)
            s.observe(e, now++, round == 0 ? ReuseStack::infinite : 40);
    }
    EXPECT_GT(s.adjustments(), 0u);
    EXPECT_GE(s.qualificationThreshold(), cfg.floorQualification);
    EXPECT_LE(s.qualificationThreshold(), cfg.ceilQualification);
    EXPECT_GE(s.temporalThreshold(), cfg.floorTemporal);
    EXPECT_LE(s.temporalThreshold(), cfg.ceilTemporal);

    // Starve it (distances below both thresholds); every later
    // feedback check re-runs the band invariant.
    for (int round = 0; round < 64; ++round) {
        for (uint64_t e = 0; e < 16; ++e)
            s.observe(e, now++, 1);
    }
    EXPECT_GE(s.qualificationThreshold(), cfg.floorQualification);
    EXPECT_LE(s.qualificationThreshold(), cfg.ceilQualification);
    EXPECT_GE(s.temporalThreshold(), cfg.floorTemporal);
    EXPECT_LE(s.temporalThreshold(), cfg.ceilTemporal);
}

TEST(BbvInvariants, IntervalVectorsAreUnitL1)
{
    BbvCollector c(16);
    for (int interval = 0; interval < 4; ++interval) {
        c.onBlock(1, 10);
        c.onBlock(2, 5 + interval);
        c.onBlock(interval + 3, 7);
        c.finalizeInterval(); // runs the normalization DCHECKs
    }
    const auto &vectors = c.vectors();
    ASSERT_EQ(vectors.size(), 4u);
    for (const auto &v : vectors) {
        double sum = 0.0;
        for (double x : v) {
            EXPECT_GE(x, 0.0);
            EXPECT_LE(x, 1.0);
            sum += x;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(BbvInvariants, EmptyIntervalStaysZero)
{
    BbvCollector c(8);
    c.finalizeInterval(); // no weight: the zero vector is legal
    ASSERT_EQ(c.vectors().size(), 1u);
    for (double x : c.vectors()[0])
        EXPECT_EQ(x, 0.0);
}

} // namespace
