file(REMOVE_RECURSE
  "liblpp_workloads.a"
)
