# Empty dependencies file for lpp_workloads.
# This may be replaced when dependencies are built.
