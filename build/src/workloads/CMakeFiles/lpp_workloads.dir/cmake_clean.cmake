file(REMOVE_RECURSE
  "CMakeFiles/lpp_workloads.dir/address_space.cpp.o"
  "CMakeFiles/lpp_workloads.dir/address_space.cpp.o.d"
  "CMakeFiles/lpp_workloads.dir/applu.cpp.o"
  "CMakeFiles/lpp_workloads.dir/applu.cpp.o.d"
  "CMakeFiles/lpp_workloads.dir/compress.cpp.o"
  "CMakeFiles/lpp_workloads.dir/compress.cpp.o.d"
  "CMakeFiles/lpp_workloads.dir/fft.cpp.o"
  "CMakeFiles/lpp_workloads.dir/fft.cpp.o.d"
  "CMakeFiles/lpp_workloads.dir/gcc.cpp.o"
  "CMakeFiles/lpp_workloads.dir/gcc.cpp.o.d"
  "CMakeFiles/lpp_workloads.dir/mesh.cpp.o"
  "CMakeFiles/lpp_workloads.dir/mesh.cpp.o.d"
  "CMakeFiles/lpp_workloads.dir/moldyn.cpp.o"
  "CMakeFiles/lpp_workloads.dir/moldyn.cpp.o.d"
  "CMakeFiles/lpp_workloads.dir/registry.cpp.o"
  "CMakeFiles/lpp_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/lpp_workloads.dir/swim.cpp.o"
  "CMakeFiles/lpp_workloads.dir/swim.cpp.o.d"
  "CMakeFiles/lpp_workloads.dir/tomcatv.cpp.o"
  "CMakeFiles/lpp_workloads.dir/tomcatv.cpp.o.d"
  "CMakeFiles/lpp_workloads.dir/vortex.cpp.o"
  "CMakeFiles/lpp_workloads.dir/vortex.cpp.o.d"
  "liblpp_workloads.a"
  "liblpp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
