
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/address_space.cpp" "src/workloads/CMakeFiles/lpp_workloads.dir/address_space.cpp.o" "gcc" "src/workloads/CMakeFiles/lpp_workloads.dir/address_space.cpp.o.d"
  "/root/repo/src/workloads/applu.cpp" "src/workloads/CMakeFiles/lpp_workloads.dir/applu.cpp.o" "gcc" "src/workloads/CMakeFiles/lpp_workloads.dir/applu.cpp.o.d"
  "/root/repo/src/workloads/compress.cpp" "src/workloads/CMakeFiles/lpp_workloads.dir/compress.cpp.o" "gcc" "src/workloads/CMakeFiles/lpp_workloads.dir/compress.cpp.o.d"
  "/root/repo/src/workloads/fft.cpp" "src/workloads/CMakeFiles/lpp_workloads.dir/fft.cpp.o" "gcc" "src/workloads/CMakeFiles/lpp_workloads.dir/fft.cpp.o.d"
  "/root/repo/src/workloads/gcc.cpp" "src/workloads/CMakeFiles/lpp_workloads.dir/gcc.cpp.o" "gcc" "src/workloads/CMakeFiles/lpp_workloads.dir/gcc.cpp.o.d"
  "/root/repo/src/workloads/mesh.cpp" "src/workloads/CMakeFiles/lpp_workloads.dir/mesh.cpp.o" "gcc" "src/workloads/CMakeFiles/lpp_workloads.dir/mesh.cpp.o.d"
  "/root/repo/src/workloads/moldyn.cpp" "src/workloads/CMakeFiles/lpp_workloads.dir/moldyn.cpp.o" "gcc" "src/workloads/CMakeFiles/lpp_workloads.dir/moldyn.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/lpp_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/lpp_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/swim.cpp" "src/workloads/CMakeFiles/lpp_workloads.dir/swim.cpp.o" "gcc" "src/workloads/CMakeFiles/lpp_workloads.dir/swim.cpp.o.d"
  "/root/repo/src/workloads/tomcatv.cpp" "src/workloads/CMakeFiles/lpp_workloads.dir/tomcatv.cpp.o" "gcc" "src/workloads/CMakeFiles/lpp_workloads.dir/tomcatv.cpp.o.d"
  "/root/repo/src/workloads/vortex.cpp" "src/workloads/CMakeFiles/lpp_workloads.dir/vortex.cpp.o" "gcc" "src/workloads/CMakeFiles/lpp_workloads.dir/vortex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lpp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
