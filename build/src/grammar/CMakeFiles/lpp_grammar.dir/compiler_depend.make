# Empty compiler generated dependencies file for lpp_grammar.
# This may be replaced when dependencies are built.
