
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grammar/automaton.cpp" "src/grammar/CMakeFiles/lpp_grammar.dir/automaton.cpp.o" "gcc" "src/grammar/CMakeFiles/lpp_grammar.dir/automaton.cpp.o.d"
  "/root/repo/src/grammar/grammar.cpp" "src/grammar/CMakeFiles/lpp_grammar.dir/grammar.cpp.o" "gcc" "src/grammar/CMakeFiles/lpp_grammar.dir/grammar.cpp.o.d"
  "/root/repo/src/grammar/hierarchy.cpp" "src/grammar/CMakeFiles/lpp_grammar.dir/hierarchy.cpp.o" "gcc" "src/grammar/CMakeFiles/lpp_grammar.dir/hierarchy.cpp.o.d"
  "/root/repo/src/grammar/regex.cpp" "src/grammar/CMakeFiles/lpp_grammar.dir/regex.cpp.o" "gcc" "src/grammar/CMakeFiles/lpp_grammar.dir/regex.cpp.o.d"
  "/root/repo/src/grammar/sequitur.cpp" "src/grammar/CMakeFiles/lpp_grammar.dir/sequitur.cpp.o" "gcc" "src/grammar/CMakeFiles/lpp_grammar.dir/sequitur.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
