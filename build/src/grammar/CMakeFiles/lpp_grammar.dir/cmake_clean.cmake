file(REMOVE_RECURSE
  "CMakeFiles/lpp_grammar.dir/automaton.cpp.o"
  "CMakeFiles/lpp_grammar.dir/automaton.cpp.o.d"
  "CMakeFiles/lpp_grammar.dir/grammar.cpp.o"
  "CMakeFiles/lpp_grammar.dir/grammar.cpp.o.d"
  "CMakeFiles/lpp_grammar.dir/hierarchy.cpp.o"
  "CMakeFiles/lpp_grammar.dir/hierarchy.cpp.o.d"
  "CMakeFiles/lpp_grammar.dir/regex.cpp.o"
  "CMakeFiles/lpp_grammar.dir/regex.cpp.o.d"
  "CMakeFiles/lpp_grammar.dir/sequitur.cpp.o"
  "CMakeFiles/lpp_grammar.dir/sequitur.cpp.o.d"
  "liblpp_grammar.a"
  "liblpp_grammar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpp_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
