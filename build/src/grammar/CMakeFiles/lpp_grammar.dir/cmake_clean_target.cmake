file(REMOVE_RECURSE
  "liblpp_grammar.a"
)
