file(REMOVE_RECURSE
  "liblpp_wavelet.a"
)
