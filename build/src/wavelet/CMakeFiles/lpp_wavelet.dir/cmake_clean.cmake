file(REMOVE_RECURSE
  "CMakeFiles/lpp_wavelet.dir/dwt.cpp.o"
  "CMakeFiles/lpp_wavelet.dir/dwt.cpp.o.d"
  "CMakeFiles/lpp_wavelet.dir/filtering.cpp.o"
  "CMakeFiles/lpp_wavelet.dir/filtering.cpp.o.d"
  "CMakeFiles/lpp_wavelet.dir/wavelet.cpp.o"
  "CMakeFiles/lpp_wavelet.dir/wavelet.cpp.o.d"
  "liblpp_wavelet.a"
  "liblpp_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpp_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
