
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wavelet/dwt.cpp" "src/wavelet/CMakeFiles/lpp_wavelet.dir/dwt.cpp.o" "gcc" "src/wavelet/CMakeFiles/lpp_wavelet.dir/dwt.cpp.o.d"
  "/root/repo/src/wavelet/filtering.cpp" "src/wavelet/CMakeFiles/lpp_wavelet.dir/filtering.cpp.o" "gcc" "src/wavelet/CMakeFiles/lpp_wavelet.dir/filtering.cpp.o.d"
  "/root/repo/src/wavelet/wavelet.cpp" "src/wavelet/CMakeFiles/lpp_wavelet.dir/wavelet.cpp.o" "gcc" "src/wavelet/CMakeFiles/lpp_wavelet.dir/wavelet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reuse/CMakeFiles/lpp_reuse.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lpp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lpp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
