# Empty dependencies file for lpp_wavelet.
# This may be replaced when dependencies are built.
