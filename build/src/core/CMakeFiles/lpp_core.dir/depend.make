# Empty dependencies file for lpp_core.
# This may be replaced when dependencies are built.
