file(REMOVE_RECURSE
  "CMakeFiles/lpp_core.dir/analysis.cpp.o"
  "CMakeFiles/lpp_core.dir/analysis.cpp.o.d"
  "CMakeFiles/lpp_core.dir/evaluation.cpp.o"
  "CMakeFiles/lpp_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/lpp_core.dir/persistence.cpp.o"
  "CMakeFiles/lpp_core.dir/persistence.cpp.o.d"
  "CMakeFiles/lpp_core.dir/runtime.cpp.o"
  "CMakeFiles/lpp_core.dir/runtime.cpp.o.d"
  "CMakeFiles/lpp_core.dir/statistical.cpp.o"
  "CMakeFiles/lpp_core.dir/statistical.cpp.o.d"
  "liblpp_core.a"
  "liblpp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
