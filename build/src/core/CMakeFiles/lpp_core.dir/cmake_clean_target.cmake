file(REMOVE_RECURSE
  "liblpp_core.a"
)
