# Empty compiler generated dependencies file for lpp_trace.
# This may be replaced when dependencies are built.
