file(REMOVE_RECURSE
  "liblpp_trace.a"
)
