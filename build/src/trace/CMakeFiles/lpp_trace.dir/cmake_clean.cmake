file(REMOVE_RECURSE
  "CMakeFiles/lpp_trace.dir/instrument.cpp.o"
  "CMakeFiles/lpp_trace.dir/instrument.cpp.o.d"
  "CMakeFiles/lpp_trace.dir/recorder.cpp.o"
  "CMakeFiles/lpp_trace.dir/recorder.cpp.o.d"
  "CMakeFiles/lpp_trace.dir/textio.cpp.o"
  "CMakeFiles/lpp_trace.dir/textio.cpp.o.d"
  "liblpp_trace.a"
  "liblpp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
