# Empty dependencies file for lpp_support.
# This may be replaced when dependencies are built.
