file(REMOVE_RECURSE
  "liblpp_support.a"
)
