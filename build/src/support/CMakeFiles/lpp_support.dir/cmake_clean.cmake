file(REMOVE_RECURSE
  "CMakeFiles/lpp_support.dir/csv.cpp.o"
  "CMakeFiles/lpp_support.dir/csv.cpp.o.d"
  "CMakeFiles/lpp_support.dir/histogram.cpp.o"
  "CMakeFiles/lpp_support.dir/histogram.cpp.o.d"
  "CMakeFiles/lpp_support.dir/logging.cpp.o"
  "CMakeFiles/lpp_support.dir/logging.cpp.o.d"
  "CMakeFiles/lpp_support.dir/stats.cpp.o"
  "CMakeFiles/lpp_support.dir/stats.cpp.o.d"
  "liblpp_support.a"
  "liblpp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
