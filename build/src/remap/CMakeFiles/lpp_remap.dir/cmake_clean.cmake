file(REMOVE_RECURSE
  "CMakeFiles/lpp_remap.dir/affinity.cpp.o"
  "CMakeFiles/lpp_remap.dir/affinity.cpp.o.d"
  "CMakeFiles/lpp_remap.dir/regroup.cpp.o"
  "CMakeFiles/lpp_remap.dir/regroup.cpp.o.d"
  "liblpp_remap.a"
  "liblpp_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpp_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
