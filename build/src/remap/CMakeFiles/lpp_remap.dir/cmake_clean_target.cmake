file(REMOVE_RECURSE
  "liblpp_remap.a"
)
