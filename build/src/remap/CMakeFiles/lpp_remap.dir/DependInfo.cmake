
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/remap/affinity.cpp" "src/remap/CMakeFiles/lpp_remap.dir/affinity.cpp.o" "gcc" "src/remap/CMakeFiles/lpp_remap.dir/affinity.cpp.o.d"
  "/root/repo/src/remap/regroup.cpp" "src/remap/CMakeFiles/lpp_remap.dir/regroup.cpp.o" "gcc" "src/remap/CMakeFiles/lpp_remap.dir/regroup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/lpp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/lpp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lpp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
