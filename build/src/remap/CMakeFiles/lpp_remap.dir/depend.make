# Empty dependencies file for lpp_remap.
# This may be replaced when dependencies are built.
