file(REMOVE_RECURSE
  "CMakeFiles/lpp_cache.dir/lru_cache.cpp.o"
  "CMakeFiles/lpp_cache.dir/lru_cache.cpp.o.d"
  "CMakeFiles/lpp_cache.dir/opt_sim.cpp.o"
  "CMakeFiles/lpp_cache.dir/opt_sim.cpp.o.d"
  "CMakeFiles/lpp_cache.dir/resizing.cpp.o"
  "CMakeFiles/lpp_cache.dir/resizing.cpp.o.d"
  "CMakeFiles/lpp_cache.dir/stack_sim.cpp.o"
  "CMakeFiles/lpp_cache.dir/stack_sim.cpp.o.d"
  "liblpp_cache.a"
  "liblpp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
