file(REMOVE_RECURSE
  "liblpp_cache.a"
)
