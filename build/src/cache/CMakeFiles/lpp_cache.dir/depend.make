# Empty dependencies file for lpp_cache.
# This may be replaced when dependencies are built.
