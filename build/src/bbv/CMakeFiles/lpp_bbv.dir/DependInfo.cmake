
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bbv/bbv.cpp" "src/bbv/CMakeFiles/lpp_bbv.dir/bbv.cpp.o" "gcc" "src/bbv/CMakeFiles/lpp_bbv.dir/bbv.cpp.o.d"
  "/root/repo/src/bbv/clustering.cpp" "src/bbv/CMakeFiles/lpp_bbv.dir/clustering.cpp.o" "gcc" "src/bbv/CMakeFiles/lpp_bbv.dir/clustering.cpp.o.d"
  "/root/repo/src/bbv/markov.cpp" "src/bbv/CMakeFiles/lpp_bbv.dir/markov.cpp.o" "gcc" "src/bbv/CMakeFiles/lpp_bbv.dir/markov.cpp.o.d"
  "/root/repo/src/bbv/working_set.cpp" "src/bbv/CMakeFiles/lpp_bbv.dir/working_set.cpp.o" "gcc" "src/bbv/CMakeFiles/lpp_bbv.dir/working_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lpp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
