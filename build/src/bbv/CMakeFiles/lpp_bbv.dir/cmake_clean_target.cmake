file(REMOVE_RECURSE
  "liblpp_bbv.a"
)
