file(REMOVE_RECURSE
  "CMakeFiles/lpp_bbv.dir/bbv.cpp.o"
  "CMakeFiles/lpp_bbv.dir/bbv.cpp.o.d"
  "CMakeFiles/lpp_bbv.dir/clustering.cpp.o"
  "CMakeFiles/lpp_bbv.dir/clustering.cpp.o.d"
  "CMakeFiles/lpp_bbv.dir/markov.cpp.o"
  "CMakeFiles/lpp_bbv.dir/markov.cpp.o.d"
  "CMakeFiles/lpp_bbv.dir/working_set.cpp.o"
  "CMakeFiles/lpp_bbv.dir/working_set.cpp.o.d"
  "liblpp_bbv.a"
  "liblpp_bbv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpp_bbv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
