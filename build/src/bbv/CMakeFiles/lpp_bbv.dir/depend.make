# Empty dependencies file for lpp_bbv.
# This may be replaced when dependencies are built.
