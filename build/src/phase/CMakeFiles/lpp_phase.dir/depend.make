# Empty dependencies file for lpp_phase.
# This may be replaced when dependencies are built.
