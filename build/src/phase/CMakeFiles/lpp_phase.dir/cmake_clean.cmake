file(REMOVE_RECURSE
  "CMakeFiles/lpp_phase.dir/detector.cpp.o"
  "CMakeFiles/lpp_phase.dir/detector.cpp.o.d"
  "CMakeFiles/lpp_phase.dir/marker_selection.cpp.o"
  "CMakeFiles/lpp_phase.dir/marker_selection.cpp.o.d"
  "CMakeFiles/lpp_phase.dir/partition.cpp.o"
  "CMakeFiles/lpp_phase.dir/partition.cpp.o.d"
  "liblpp_phase.a"
  "liblpp_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpp_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
