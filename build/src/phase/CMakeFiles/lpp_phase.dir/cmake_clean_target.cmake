file(REMOVE_RECURSE
  "liblpp_phase.a"
)
