
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phase/detector.cpp" "src/phase/CMakeFiles/lpp_phase.dir/detector.cpp.o" "gcc" "src/phase/CMakeFiles/lpp_phase.dir/detector.cpp.o.d"
  "/root/repo/src/phase/marker_selection.cpp" "src/phase/CMakeFiles/lpp_phase.dir/marker_selection.cpp.o" "gcc" "src/phase/CMakeFiles/lpp_phase.dir/marker_selection.cpp.o.d"
  "/root/repo/src/phase/partition.cpp" "src/phase/CMakeFiles/lpp_phase.dir/partition.cpp.o" "gcc" "src/phase/CMakeFiles/lpp_phase.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wavelet/CMakeFiles/lpp_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/reuse/CMakeFiles/lpp_reuse.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lpp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
