
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reuse/analyzer.cpp" "src/reuse/CMakeFiles/lpp_reuse.dir/analyzer.cpp.o" "gcc" "src/reuse/CMakeFiles/lpp_reuse.dir/analyzer.cpp.o.d"
  "/root/repo/src/reuse/sampler.cpp" "src/reuse/CMakeFiles/lpp_reuse.dir/sampler.cpp.o" "gcc" "src/reuse/CMakeFiles/lpp_reuse.dir/sampler.cpp.o.d"
  "/root/repo/src/reuse/spatial.cpp" "src/reuse/CMakeFiles/lpp_reuse.dir/spatial.cpp.o" "gcc" "src/reuse/CMakeFiles/lpp_reuse.dir/spatial.cpp.o.d"
  "/root/repo/src/reuse/stack.cpp" "src/reuse/CMakeFiles/lpp_reuse.dir/stack.cpp.o" "gcc" "src/reuse/CMakeFiles/lpp_reuse.dir/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lpp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
