file(REMOVE_RECURSE
  "liblpp_reuse.a"
)
