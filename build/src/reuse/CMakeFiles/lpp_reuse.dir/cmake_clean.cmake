file(REMOVE_RECURSE
  "CMakeFiles/lpp_reuse.dir/analyzer.cpp.o"
  "CMakeFiles/lpp_reuse.dir/analyzer.cpp.o.d"
  "CMakeFiles/lpp_reuse.dir/sampler.cpp.o"
  "CMakeFiles/lpp_reuse.dir/sampler.cpp.o.d"
  "CMakeFiles/lpp_reuse.dir/spatial.cpp.o"
  "CMakeFiles/lpp_reuse.dir/spatial.cpp.o.d"
  "CMakeFiles/lpp_reuse.dir/stack.cpp.o"
  "CMakeFiles/lpp_reuse.dir/stack.cpp.o.d"
  "liblpp_reuse.a"
  "liblpp_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpp_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
