# Empty compiler generated dependencies file for lpp_reuse.
# This may be replaced when dependencies are built.
