file(REMOVE_RECURSE
  "CMakeFiles/memory_remap.dir/memory_remap.cpp.o"
  "CMakeFiles/memory_remap.dir/memory_remap.cpp.o.d"
  "memory_remap"
  "memory_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
