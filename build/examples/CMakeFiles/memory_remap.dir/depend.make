# Empty dependencies file for memory_remap.
# This may be replaced when dependencies are built.
