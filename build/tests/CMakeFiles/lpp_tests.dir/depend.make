# Empty dependencies file for lpp_tests.
# This may be replaced when dependencies are built.
