
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bbv/bbv_test.cpp" "tests/CMakeFiles/lpp_tests.dir/bbv/bbv_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/bbv/bbv_test.cpp.o.d"
  "/root/repo/tests/bbv/clustering_test.cpp" "tests/CMakeFiles/lpp_tests.dir/bbv/clustering_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/bbv/clustering_test.cpp.o.d"
  "/root/repo/tests/bbv/markov_test.cpp" "tests/CMakeFiles/lpp_tests.dir/bbv/markov_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/bbv/markov_test.cpp.o.d"
  "/root/repo/tests/bbv/working_set_test.cpp" "tests/CMakeFiles/lpp_tests.dir/bbv/working_set_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/bbv/working_set_test.cpp.o.d"
  "/root/repo/tests/cache/lru_cache_test.cpp" "tests/CMakeFiles/lpp_tests.dir/cache/lru_cache_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/cache/lru_cache_test.cpp.o.d"
  "/root/repo/tests/cache/opt_sim_test.cpp" "tests/CMakeFiles/lpp_tests.dir/cache/opt_sim_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/cache/opt_sim_test.cpp.o.d"
  "/root/repo/tests/cache/resizing_test.cpp" "tests/CMakeFiles/lpp_tests.dir/cache/resizing_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/cache/resizing_test.cpp.o.d"
  "/root/repo/tests/cache/stack_sim_test.cpp" "tests/CMakeFiles/lpp_tests.dir/cache/stack_sim_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/cache/stack_sim_test.cpp.o.d"
  "/root/repo/tests/core/evaluation_test.cpp" "tests/CMakeFiles/lpp_tests.dir/core/evaluation_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/core/evaluation_test.cpp.o.d"
  "/root/repo/tests/core/persistence_test.cpp" "tests/CMakeFiles/lpp_tests.dir/core/persistence_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/core/persistence_test.cpp.o.d"
  "/root/repo/tests/core/runtime_test.cpp" "tests/CMakeFiles/lpp_tests.dir/core/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/core/runtime_test.cpp.o.d"
  "/root/repo/tests/core/statistical_test.cpp" "tests/CMakeFiles/lpp_tests.dir/core/statistical_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/core/statistical_test.cpp.o.d"
  "/root/repo/tests/core/workload_integration_test.cpp" "tests/CMakeFiles/lpp_tests.dir/core/workload_integration_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/core/workload_integration_test.cpp.o.d"
  "/root/repo/tests/grammar/automaton_test.cpp" "tests/CMakeFiles/lpp_tests.dir/grammar/automaton_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/grammar/automaton_test.cpp.o.d"
  "/root/repo/tests/grammar/hierarchy_test.cpp" "tests/CMakeFiles/lpp_tests.dir/grammar/hierarchy_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/grammar/hierarchy_test.cpp.o.d"
  "/root/repo/tests/grammar/regex_test.cpp" "tests/CMakeFiles/lpp_tests.dir/grammar/regex_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/grammar/regex_test.cpp.o.d"
  "/root/repo/tests/grammar/sequitur_test.cpp" "tests/CMakeFiles/lpp_tests.dir/grammar/sequitur_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/grammar/sequitur_test.cpp.o.d"
  "/root/repo/tests/phase/detector_test.cpp" "tests/CMakeFiles/lpp_tests.dir/phase/detector_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/phase/detector_test.cpp.o.d"
  "/root/repo/tests/phase/marker_selection_test.cpp" "tests/CMakeFiles/lpp_tests.dir/phase/marker_selection_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/phase/marker_selection_test.cpp.o.d"
  "/root/repo/tests/phase/partition_test.cpp" "tests/CMakeFiles/lpp_tests.dir/phase/partition_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/phase/partition_test.cpp.o.d"
  "/root/repo/tests/phase/subphase_test.cpp" "tests/CMakeFiles/lpp_tests.dir/phase/subphase_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/phase/subphase_test.cpp.o.d"
  "/root/repo/tests/remap/affinity_test.cpp" "tests/CMakeFiles/lpp_tests.dir/remap/affinity_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/remap/affinity_test.cpp.o.d"
  "/root/repo/tests/remap/regroup_test.cpp" "tests/CMakeFiles/lpp_tests.dir/remap/regroup_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/remap/regroup_test.cpp.o.d"
  "/root/repo/tests/reuse/analyzer_test.cpp" "tests/CMakeFiles/lpp_tests.dir/reuse/analyzer_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/reuse/analyzer_test.cpp.o.d"
  "/root/repo/tests/reuse/sampler_test.cpp" "tests/CMakeFiles/lpp_tests.dir/reuse/sampler_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/reuse/sampler_test.cpp.o.d"
  "/root/repo/tests/reuse/spatial_test.cpp" "tests/CMakeFiles/lpp_tests.dir/reuse/spatial_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/reuse/spatial_test.cpp.o.d"
  "/root/repo/tests/reuse/stack_test.cpp" "tests/CMakeFiles/lpp_tests.dir/reuse/stack_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/reuse/stack_test.cpp.o.d"
  "/root/repo/tests/support/csv_test.cpp" "tests/CMakeFiles/lpp_tests.dir/support/csv_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/support/csv_test.cpp.o.d"
  "/root/repo/tests/support/histogram_test.cpp" "tests/CMakeFiles/lpp_tests.dir/support/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/support/histogram_test.cpp.o.d"
  "/root/repo/tests/support/logging_test.cpp" "tests/CMakeFiles/lpp_tests.dir/support/logging_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/support/logging_test.cpp.o.d"
  "/root/repo/tests/support/random_test.cpp" "tests/CMakeFiles/lpp_tests.dir/support/random_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/support/random_test.cpp.o.d"
  "/root/repo/tests/support/stats_test.cpp" "tests/CMakeFiles/lpp_tests.dir/support/stats_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/support/stats_test.cpp.o.d"
  "/root/repo/tests/trace/instrument_test.cpp" "tests/CMakeFiles/lpp_tests.dir/trace/instrument_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/trace/instrument_test.cpp.o.d"
  "/root/repo/tests/trace/recorder_test.cpp" "tests/CMakeFiles/lpp_tests.dir/trace/recorder_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/trace/recorder_test.cpp.o.d"
  "/root/repo/tests/trace/sink_test.cpp" "tests/CMakeFiles/lpp_tests.dir/trace/sink_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/trace/sink_test.cpp.o.d"
  "/root/repo/tests/trace/textio_test.cpp" "tests/CMakeFiles/lpp_tests.dir/trace/textio_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/trace/textio_test.cpp.o.d"
  "/root/repo/tests/wavelet/dwt_test.cpp" "tests/CMakeFiles/lpp_tests.dir/wavelet/dwt_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/wavelet/dwt_test.cpp.o.d"
  "/root/repo/tests/wavelet/filtering_test.cpp" "tests/CMakeFiles/lpp_tests.dir/wavelet/filtering_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/wavelet/filtering_test.cpp.o.d"
  "/root/repo/tests/wavelet/wavelet_test.cpp" "tests/CMakeFiles/lpp_tests.dir/wavelet/wavelet_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/wavelet/wavelet_test.cpp.o.d"
  "/root/repo/tests/workloads/workloads_test.cpp" "tests/CMakeFiles/lpp_tests.dir/workloads/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/lpp_tests.dir/workloads/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/remap/CMakeFiles/lpp_remap.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lpp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/bbv/CMakeFiles/lpp_bbv.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/lpp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/lpp_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/phase/CMakeFiles/lpp_phase.dir/DependInfo.cmake"
  "/root/repo/build/src/wavelet/CMakeFiles/lpp_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/reuse/CMakeFiles/lpp_reuse.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lpp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
