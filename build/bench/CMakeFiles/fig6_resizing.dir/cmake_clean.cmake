file(REMOVE_RECURSE
  "CMakeFiles/fig6_resizing.dir/fig6_resizing.cpp.o"
  "CMakeFiles/fig6_resizing.dir/fig6_resizing.cpp.o.d"
  "fig6_resizing"
  "fig6_resizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_resizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
