# Empty compiler generated dependencies file for fig6_resizing.
# This may be replaced when dependencies are built.
