# Empty compiler generated dependencies file for table2_prediction.
# This may be replaced when dependencies are built.
