file(REMOVE_RECURSE
  "CMakeFiles/ablation_statistical.dir/ablation_statistical.cpp.o"
  "CMakeFiles/ablation_statistical.dir/ablation_statistical.cpp.o.d"
  "ablation_statistical"
  "ablation_statistical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_statistical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
