# Empty dependencies file for ablation_statistical.
# This may be replaced when dependencies are built.
