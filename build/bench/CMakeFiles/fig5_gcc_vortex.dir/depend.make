# Empty dependencies file for fig5_gcc_vortex.
# This may be replaced when dependencies are built.
