file(REMOVE_RECURSE
  "CMakeFiles/fig5_gcc_vortex.dir/fig5_gcc_vortex.cpp.o"
  "CMakeFiles/fig5_gcc_vortex.dir/fig5_gcc_vortex.cpp.o.d"
  "fig5_gcc_vortex"
  "fig5_gcc_vortex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gcc_vortex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
