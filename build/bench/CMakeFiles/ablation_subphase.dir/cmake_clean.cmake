file(REMOVE_RECURSE
  "CMakeFiles/ablation_subphase.dir/ablation_subphase.cpp.o"
  "CMakeFiles/ablation_subphase.dir/ablation_subphase.cpp.o.d"
  "ablation_subphase"
  "ablation_subphase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subphase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
