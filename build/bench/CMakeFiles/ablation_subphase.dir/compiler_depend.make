# Empty compiler generated dependencies file for ablation_subphase.
# This may be replaced when dependencies are built.
