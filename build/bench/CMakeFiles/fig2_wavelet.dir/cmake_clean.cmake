file(REMOVE_RECURSE
  "CMakeFiles/fig2_wavelet.dir/fig2_wavelet.cpp.o"
  "CMakeFiles/fig2_wavelet.dir/fig2_wavelet.cpp.o.d"
  "fig2_wavelet"
  "fig2_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
