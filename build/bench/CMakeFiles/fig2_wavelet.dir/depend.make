# Empty dependencies file for fig2_wavelet.
# This may be replaced when dependencies are built.
