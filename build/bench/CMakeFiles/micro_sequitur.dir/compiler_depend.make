# Empty compiler generated dependencies file for micro_sequitur.
# This may be replaced when dependencies are built.
