file(REMOVE_RECURSE
  "CMakeFiles/micro_sequitur.dir/micro_sequitur.cpp.o"
  "CMakeFiles/micro_sequitur.dir/micro_sequitur.cpp.o.d"
  "micro_sequitur"
  "micro_sequitur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sequitur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
