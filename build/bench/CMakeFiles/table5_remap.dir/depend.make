# Empty dependencies file for table5_remap.
# This may be replaced when dependencies are built.
