file(REMOVE_RECURSE
  "CMakeFiles/table5_remap.dir/table5_remap.cpp.o"
  "CMakeFiles/table5_remap.dir/table5_remap.cpp.o.d"
  "table5_remap"
  "table5_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
