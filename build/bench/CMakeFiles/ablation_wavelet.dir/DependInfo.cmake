
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_wavelet.cpp" "bench/CMakeFiles/ablation_wavelet.dir/ablation_wavelet.cpp.o" "gcc" "bench/CMakeFiles/ablation_wavelet.dir/ablation_wavelet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/remap/CMakeFiles/lpp_remap.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lpp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/bbv/CMakeFiles/lpp_bbv.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/lpp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/lpp_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/phase/CMakeFiles/lpp_phase.dir/DependInfo.cmake"
  "/root/repo/build/src/wavelet/CMakeFiles/lpp_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/reuse/CMakeFiles/lpp_reuse.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lpp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
