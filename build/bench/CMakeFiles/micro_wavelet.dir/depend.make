# Empty dependencies file for micro_wavelet.
# This may be replaced when dependencies are built.
