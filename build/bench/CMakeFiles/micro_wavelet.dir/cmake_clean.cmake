file(REMOVE_RECURSE
  "CMakeFiles/micro_wavelet.dir/micro_wavelet.cpp.o"
  "CMakeFiles/micro_wavelet.dir/micro_wavelet.cpp.o.d"
  "micro_wavelet"
  "micro_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
