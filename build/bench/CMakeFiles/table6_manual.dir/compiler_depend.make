# Empty compiler generated dependencies file for table6_manual.
# This may be replaced when dependencies are built.
