file(REMOVE_RECURSE
  "CMakeFiles/table6_manual.dir/table6_manual.cpp.o"
  "CMakeFiles/table6_manual.dir/table6_manual.cpp.o.d"
  "table6_manual"
  "table6_manual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_manual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
