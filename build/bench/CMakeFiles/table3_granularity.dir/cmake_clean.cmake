file(REMOVE_RECURSE
  "CMakeFiles/table3_granularity.dir/table3_granularity.cpp.o"
  "CMakeFiles/table3_granularity.dir/table3_granularity.cpp.o.d"
  "table3_granularity"
  "table3_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
