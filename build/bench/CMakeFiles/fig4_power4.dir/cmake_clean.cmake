file(REMOVE_RECURSE
  "CMakeFiles/fig4_power4.dir/fig4_power4.cpp.o"
  "CMakeFiles/fig4_power4.dir/fig4_power4.cpp.o.d"
  "fig4_power4"
  "fig4_power4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_power4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
