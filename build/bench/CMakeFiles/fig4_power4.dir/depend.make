# Empty dependencies file for fig4_power4.
# This may be replaced when dependencies are built.
