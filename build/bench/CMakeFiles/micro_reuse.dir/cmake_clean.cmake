file(REMOVE_RECURSE
  "CMakeFiles/micro_reuse.dir/micro_reuse.cpp.o"
  "CMakeFiles/micro_reuse.dir/micro_reuse.cpp.o.d"
  "micro_reuse"
  "micro_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
