file(REMOVE_RECURSE
  "CMakeFiles/table4_stddev.dir/table4_stddev.cpp.o"
  "CMakeFiles/table4_stddev.dir/table4_stddev.cpp.o.d"
  "table4_stddev"
  "table4_stddev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_stddev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
