# Empty compiler generated dependencies file for table4_stddev.
# This may be replaced when dependencies are built.
